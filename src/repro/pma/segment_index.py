"""Implicit segment-location tree with top-k shared-memory caching.

Locating the leaf segment of an update key walks an implicit binary
tree over segment first-keys. GPMA keeps the whole tree in global
memory; the paper's optimization (§V-C) loads the top-k levels into
shared memory, converting the first k probes of every location into
cheap shared-memory reads. :class:`SegmentIndex` performs the actual
tree walk (validated against the PMA's bisect) and reports the cost
split for the chosen ``cached_levels``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import xp
from repro.pma.pma import PMA


@dataclass(frozen=True)
class LocateCost:
    """Probe counts for one leaf location."""

    shared_probes: int
    global_probes: int


class SegmentIndex:
    """Binary tree over a PMA's per-segment first keys.

    ``tree[level][i]`` is the minimum key of the i-th window at that
    level (level 0 = leaves = segments). Rebuild after PMA structural
    changes (the GPMA layer rebuilds once per batch, which is also how
    the real system amortizes it).
    """

    def __init__(self, pma: PMA, cached_levels: int = 3) -> None:
        self.cached_levels = cached_levels
        firsts = xp.asarray(pma._seg_first, dtype=xp.int64)
        # each level is a stride view of the leaves: window minima are
        # the first keys of every 2^level-th segment (no copies)
        self.levels: list[xp.ndarray] = [firsts]
        while len(self.levels[-1]) > 1:
            self.levels.append(self.levels[-1][::2])
        self.height = len(self.levels) - 1

    def locate(self, key: int) -> tuple[int, LocateCost]:
        """Leaf segment index for ``key`` plus the probe cost split.

        The walk starts at the root and at each level decides between
        the two children by probing the right child's minimum key.
        """
        idx = 0
        shared = global_ = 0
        for level in range(self.height, 0, -1):
            below = self.levels[level - 1]
            right = idx * 2 + 1
            # one probe of the right child's min key
            depth_from_root = self.height - level
            if depth_from_root < self.cached_levels:
                shared += 1
            else:
                global_ += 1
            # fill-forward sentinels compare like real keys so the walk
            # lands on exactly the segment PMA's bisect would choose
            if right < len(below) and key >= below[right]:
                idx = right
            else:
                idx = idx * 2
        return idx, LocateCost(shared, global_)

    def locate_leaf(self, key: int) -> int:
        return self.locate(key)[0]

    def locate_bulk(self, keys) -> tuple[xp.ndarray, LocateCost]:
        """Vectorized :meth:`locate` over many keys.

        The walk's leaf is exactly the rightmost segment whose
        fill-forward first key is ``<= key`` (ties descend right), i.e.
        one ``searchsorted``; and the probe split is deterministic —
        every location probes once per level, the top ``cached_levels``
        of them shared. Returns the leaf array plus the *summed* cost,
        identical to accumulating per-key :meth:`locate` calls.
        """
        arr = xp.asarray(keys, dtype=xp.int64)
        firsts = xp.asarray(self.levels[0], dtype=xp.int64)
        leaves = xp.searchsorted(firsts, arr, side="right") - 1
        xp.maximum(leaves, 0, out=leaves)
        shared_per = min(self.cached_levels, self.height)
        global_per = self.height - shared_per
        return leaves, LocateCost(shared_per * len(arr), global_per * len(arr))
