"""Packed Memory Array: sorted keys with gaps, O(log² n) amortized updates.

The classic Bender/Hu structure: a power-of-two array split into
Θ(log n)-sized segments; an implicit binary tree of *windows* (aligned
runs of segments) enforces density bounds that loosen toward the leaves
for inserts (root 0.75 → leaf 1.0) and tighten for deletes (root 0.50 →
leaf 0.25). A violated window is rebalanced by spreading its elements
evenly; a violated root grows/shrinks the array.

Elements are ``(key, value)`` pairs left-packed inside each segment, so
the global key order is the concatenation of segment prefixes — the
layout GPMA uses so GPU warps can scan ranges coalescedly.

Two storage backends share one algorithm:

* ``vectorized=True`` (default) keeps keys/values in flat numpy arrays
  with a per-segment fill count (the presence mask: slot ``i`` of a
  segment is live iff ``i < count``). Batch updates run as sorted
  merges — one ``searchsorted`` over the whole batch, one allocation
  per run of non-escalating segment groups — and rebalances compute
  window densities with ``cumsum`` over the counts and redistribute
  with vectorized index arithmetic.
* ``vectorized=False`` is the original per-element list-of-lists
  formulation, kept as the correctness oracle.

Both paths produce identical structures **and byte-identical
``opstats``** for any successful operation sequence (the array path
raises *before* mutating on bad batches, where the scalar path raises
mid-way — the only tolerated divergence).

Rebalance/location work is recorded in ``opstats`` so the GPMA layer
can translate structural effort into simulated GPU cycles.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as _np

from repro import xp

from repro.errors import PmaError

_NEG_INF = -1  # sentinel first-key for leading empty segments (keys are >= 0)


@dataclass
class PmaOpStats:
    """Structural work counters, reset at the caller's discretion."""

    locates: int = 0
    element_moves: int = 0
    rebalances: int = 0
    max_rebalance_level: int = 0
    grows: int = 0
    shrinks: int = 0
    segments_touched: int = 0

    def reset(self) -> None:
        self.locates = 0
        self.element_moves = 0
        self.rebalances = 0
        self.max_rebalance_level = 0
        self.grows = 0
        self.shrinks = 0
        self.segments_touched = 0


def _slots_of(counts: xp.ndarray, bases: xp.ndarray) -> xp.ndarray:
    """Flat storage-slot index of every live element: segment base plus
    within-segment rank, in global key order."""
    total = int(counts.sum())
    if not total:
        return xp.empty(0, dtype=xp.int64)
    cum = xp.cumsum(counts)
    within = xp.arange(total, dtype=xp.int64) - xp.repeat(cum - counts, counts)
    return xp.repeat(bases, counts) + within


class PMA:
    """Packed memory array of ``(int key, int value)`` with unique keys."""

    MIN_CAPACITY = 8

    # density bounds: tau (upper) interpolates root->leaf, rho (lower) likewise
    TAU_ROOT = 0.75
    TAU_LEAF = 1.00
    RHO_ROOT = 0.50
    RHO_LEAF = 0.25

    def __init__(self, capacity: int = MIN_CAPACITY, vectorized: bool = True) -> None:
        capacity = max(self.MIN_CAPACITY, _next_pow2(capacity))
        self._capacity = capacity
        self._segment_size = _segment_size_for(capacity)
        self._vec = bool(vectorized)
        n_segs = capacity // self._segment_size
        self._n = 0
        self._height = max(0, (n_segs - 1).bit_length())
        self.opstats = PmaOpStats()
        if self._vec:
            self._alloc_arrays(n_segs)
            self._seg_first = xp.full(n_segs, _NEG_INF, dtype=xp.int64)
        else:
            self._segments: list[list[tuple[int, int]]] = [[] for _ in range(n_segs)]
            self._seg_first: list[int] = [_NEG_INF] * n_segs

    def _alloc_arrays(self, n_segs: int) -> None:
        # one spare slot per segment absorbs the transient overflow a
        # batch escalation creates before its window rebalance lands
        stride = self._segment_size + 1
        self._akeys = xp.zeros(n_segs * stride, dtype=xp.int64)
        self._avals = xp.zeros(n_segs * stride, dtype=xp.int64)
        self._acounts = xp.zeros(n_segs, dtype=xp.int64)
        # cached per-segment head slots: arange(n_segs) * stride
        self._seg_heads = xp.arange(n_segs, dtype=xp.int64) * stride
        self._packed_cache: Optional[tuple[xp.ndarray, xp.ndarray, xp.ndarray]] = None
        self._last_spread: Optional[tuple[int, int]] = None

    @classmethod
    def bulk_load(cls, items, vectorized: bool = True) -> "PMA":
        """Build a PMA from sorted-or-not ``(key, value)`` pairs at ~60%
        density (the initialization path: the data graph is loaded once,
        then evolves through batch updates)."""
        if vectorized:
            arr = xp.asarray(items, dtype=xp.int64).reshape(-1, 2)
            order = xp.argsort(arr[:, 0], kind="stable")
            keys, vals = arr[order, 0], arr[order, 1]
            dup = keys[1:] == keys[:-1]
            if dup.any():
                raise PmaError(f"duplicate key {int(keys[1:][dup][0])} in bulk load")
            capacity = _next_pow2(max(cls.MIN_CAPACITY, int(len(keys) / 0.6) + 1))
            pma = cls(capacity, vectorized=True)
            pma._distribute_evenly(keys, vals)
            return pma
        elems = sorted(tuple(e) for e in items)
        for a, b in zip(elems, elems[1:]):
            if a[0] == b[0]:
                raise PmaError(f"duplicate key {a[0]} in bulk load")
        capacity = _next_pow2(max(cls.MIN_CAPACITY, int(len(elems) / 0.6) + 1))
        pma = cls(capacity, vectorized=False)
        n_segs = pma.n_segments
        base, extra = divmod(len(elems), n_segs)
        pos = 0
        for s in range(n_segs):
            take = base + (1 if s < extra else 0)
            pma._segments[s] = elems[pos : pos + take]
            pos += take
        pma._n = len(elems)
        pma._refresh_first_range(0, n_segs)
        return pma

    def _distribute_evenly(self, keys: xp.ndarray, vals: xp.ndarray) -> None:
        """Spread sorted key/value arrays evenly over all segments (the
        bulk-load / resize layout: ``divmod`` base + one extra in the
        leading segments)."""
        n_segs = self.n_segments
        base, extra = divmod(len(keys), n_segs)
        counts = xp.full(n_segs, base, dtype=xp.int64)
        counts[:extra] += 1
        self._acounts = counts
        self._scatter(keys, vals)
        self._n = int(len(keys))
        self._refresh_first_all()

    def _scatter(self, keys: xp.ndarray, vals: xp.ndarray) -> None:
        """Write globally sorted packed arrays into the per-segment
        left-packed storage slots given by the current counts."""
        stride = self._segment_size + 1
        bases = xp.arange(self.n_segments, dtype=xp.int64) * stride
        slots = _slots_of(self._acounts, bases)
        self._akeys[slots] = keys
        self._avals[slots] = vals
        offsets = xp.empty(self.n_segments + 1, dtype=xp.int64)
        offsets[0] = 0
        xp.cumsum(self._acounts, out=offsets[1:])
        self._packed_cache = (keys, vals, offsets)

    def _packed(self) -> tuple[xp.ndarray, xp.ndarray, xp.ndarray]:
        """Globally sorted live ``(keys, values, segment offsets)``."""
        if self._packed_cache is None:
            stride = self._segment_size + 1
            bases = xp.arange(self.n_segments, dtype=xp.int64) * stride
            slots = _slots_of(self._acounts, bases)
            offsets = xp.empty(self.n_segments + 1, dtype=xp.int64)
            offsets[0] = 0
            xp.cumsum(self._acounts, out=offsets[1:])
            self._packed_cache = (self._akeys[slots], self._avals[slots], offsets)
        return self._packed_cache

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def segment_size(self) -> int:
        return self._segment_size

    @property
    def n_segments(self) -> int:
        return self._capacity // self._segment_size

    @property
    def height(self) -> int:
        """Levels of the window tree (0 = leaf ... height = root);
        cached, recomputed on resize."""
        return self._height

    def __len__(self) -> int:
        return self._n

    def _tau(self, level: int) -> float:
        """Upper density bound at window ``level`` (0 = leaf)."""
        h = self.height
        if h == 0:
            return self.TAU_LEAF
        return self.TAU_LEAF + (self.TAU_ROOT - self.TAU_LEAF) * level / h

    def _rho(self, level: int) -> float:
        """Lower density bound at window ``level`` (0 = leaf)."""
        h = self.height
        if h == 0:
            return 0.0
        return self.RHO_LEAF + (self.RHO_ROOT - self.RHO_LEAF) * level / h

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _locate_segment(self, key: int) -> int:
        """Index of the segment whose key range covers ``key``.

        Fill-forward first keys make empty segments inherit their left
        neighbor's first, so the bisect can land inside an empty run;
        the owning segment is the nearest non-empty one to the left.
        """
        self.opstats.locates += 1
        if self._vec:
            i = int(xp.searchsorted(self._seg_first, key, side="right")) - 1
            i = max(0, i)
            counts = self._acounts
            while i > 0 and not counts[i]:
                i -= 1
            return i
        i = bisect_left(self._seg_first, key + 1) - 1
        i = max(0, i)
        while i > 0 and not self._segments[i]:
            i -= 1
        return i

    def _owners_bulk(self, keys: xp.ndarray) -> xp.ndarray:
        """Vectorized :meth:`_locate_segment` (no stats: the callers
        charge locates at the same granularity as the scalar path)."""
        idx = xp.searchsorted(self._seg_first, keys, side="right") - 1
        xp.maximum(idx, 0, out=idx)
        counts = self._acounts
        if bool((counts > 0).all()):
            # no empty segments: fill-forward firsts are all distinct
            # owners, so the clamped searchsorted index is the owner
            return idx
        ne = xp.where(counts > 0, xp.arange(len(counts), dtype=xp.int64), -1)
        xp.maximum.accumulate(ne, out=ne)
        owners = ne[idx]
        xp.maximum(owners, 0, out=owners)
        return owners

    def lookup(self, key: int) -> Optional[int]:
        """Value stored under ``key`` or None."""
        seg_idx = self._locate_segment(key)
        if self._vec:
            stride = self._segment_size + 1
            base = seg_idx * stride
            cnt = int(self._acounts[seg_idx])
            kseg = self._akeys[base : base + cnt]
            i = int(xp.searchsorted(kseg, key))
            if i < cnt and kseg[i] == key:
                return int(self._avals[base + i])
            return None
        seg = self._segments[seg_idx]
        i = bisect_left(seg, (key, _NEG_INF))
        if i < len(seg) and seg[i][0] == key:
            return seg[i][1]
        return None

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None

    def keys(self) -> Iterator[int]:
        if self._vec:
            yield from xp.to_numpy(self._packed()[0]).tolist()
            return
        for seg in self._segments:
            for k, _ in seg:
                yield k

    def items(self) -> Iterator[tuple[int, int]]:
        if self._vec:
            pk, pv, _ = self._packed()
            yield from zip(xp.to_numpy(pk).tolist(), xp.to_numpy(pv).tolist())
            return
        for seg in self._segments:
            yield from seg

    def range_items(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """All ``(key, value)`` with ``lo <= key < hi`` in key order."""
        if self._vec:
            ks, vs = self.range_arrays(lo, hi)
            return list(zip(xp.to_numpy(ks).tolist(), xp.to_numpy(vs).tolist()))
        out: list[tuple[int, int]] = []
        s = self._locate_segment(lo)
        for seg_idx in range(s, self.n_segments):
            seg = self._segments[seg_idx]
            if not seg:
                continue
            if seg[0][0] >= hi:
                break
            start = bisect_left(seg, (lo, _NEG_INF))
            for k, v in seg[start:]:
                if k >= hi:
                    return out
                out.append((k, v))
        return out

    def range_arrays(self, lo: int, hi: int) -> tuple[xp.ndarray, xp.ndarray]:
        """Array view of :meth:`range_items` (vectorized storage only):
        ``(keys, values)`` with ``lo <= key < hi``, one binary search
        over the packed order."""
        if not self._vec:
            items = self.range_items(lo, hi)
            arr = xp.asarray(items, dtype=xp.int64).reshape(-1, 2)
            return arr[:, 0], arr[:, 1]
        self.opstats.locates += 1  # parity with the scalar range scan
        pk, pv, _ = self._packed()
        a = int(xp.searchsorted(pk, lo))
        b = int(xp.searchsorted(pk, hi))
        return pk[a:b], pv[a:b]

    # ------------------------------------------------------------------
    # single-element updates
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int = 0) -> None:
        """Insert a new key (raises :class:`PmaError` if present)."""
        if self._vec:
            self._insert_vec(key, value)
            return
        if self._n + 1 > self._tau(self.height) * self._capacity:
            self._grow()
        seg_idx = self._locate_segment(key)
        seg = self._segments[seg_idx]
        i = bisect_left(seg, (key, _NEG_INF))
        if i < len(seg) and seg[i][0] == key:
            raise PmaError(f"key {key} already present")
        if len(seg) + 1 <= self._segment_size:
            seg.insert(i, (key, value))
            self._n += 1
            self.opstats.element_moves += len(seg) - i
            self._refresh_first(seg_idx)
            # leaf density may now violate tau(0) only when seg full; the
            # check below escalates if the leaf exceeded its bound
            if len(seg) > self._tau(0) * self._segment_size:
                self._rebalance_up(seg_idx, for_insert=True)
            return
        # leaf physically full: escalate, then retry (a slot must exist now)
        self._rebalance_up(seg_idx, for_insert=True)
        self.insert(key, value)

    def _insert_vec(self, key: int, value: int) -> None:
        if self._n + 1 > self._tau(self.height) * self._capacity:
            self._grow()
        seg_idx = self._locate_segment(key)
        stride = self._segment_size + 1
        base = seg_idx * stride
        cnt = int(self._acounts[seg_idx])
        kseg = self._akeys[base : base + cnt]
        i = int(xp.searchsorted(kseg, key))
        if i < cnt and kseg[i] == key:
            raise PmaError(f"key {key} already present")
        if cnt + 1 <= self._segment_size:
            self._akeys[base + i + 1 : base + cnt + 1] = self._akeys[base + i : base + cnt].copy()
            self._avals[base + i + 1 : base + cnt + 1] = self._avals[base + i : base + cnt].copy()
            self._akeys[base + i] = key
            self._avals[base + i] = value
            self._acounts[seg_idx] = cnt + 1
            self._packed_cache = None
            self._n += 1
            self.opstats.element_moves += cnt + 1 - i
            self._refresh_first(seg_idx)
            if cnt + 1 > self._tau(0) * self._segment_size:
                self._rebalance_up(seg_idx, for_insert=True)
            return
        self._rebalance_up(seg_idx, for_insert=True)
        self.insert(key, value)

    def delete(self, key: int) -> int:
        """Remove ``key``; returns its value. Raises if missing."""
        if self._vec:
            return self._delete_vec(key)
        seg_idx = self._locate_segment(key)
        seg = self._segments[seg_idx]
        i = bisect_left(seg, (key, _NEG_INF))
        if i >= len(seg) or seg[i][0] != key:
            raise PmaError(f"key {key} not present")
        _, value = seg.pop(i)
        self._n -= 1
        self.opstats.element_moves += len(seg) - i
        self._refresh_first(seg_idx)
        if len(seg) < self._rho(0) * self._segment_size:
            self._rebalance_up(seg_idx, for_insert=False)
        return value

    def _delete_vec(self, key: int) -> int:
        seg_idx = self._locate_segment(key)
        stride = self._segment_size + 1
        base = seg_idx * stride
        cnt = int(self._acounts[seg_idx])
        kseg = self._akeys[base : base + cnt]
        i = int(xp.searchsorted(kseg, key))
        if i >= cnt or kseg[i] != key:
            raise PmaError(f"key {key} not present")
        value = int(self._avals[base + i])
        self._akeys[base + i : base + cnt - 1] = self._akeys[base + i + 1 : base + cnt].copy()
        self._avals[base + i : base + cnt - 1] = self._avals[base + i + 1 : base + cnt].copy()
        self._acounts[seg_idx] = cnt - 1
        self._packed_cache = None
        self._n -= 1
        self.opstats.element_moves += (cnt - 1) - i
        self._refresh_first(seg_idx)
        if cnt - 1 < self._rho(0) * self._segment_size:
            self._rebalance_up(seg_idx, for_insert=False)
        return value

    # ------------------------------------------------------------------
    # batch updates (GPMA-style: group by leaf segment, escalate windows)
    # ------------------------------------------------------------------
    def batch_insert(self, items) -> int:
        """Insert many ``(key, value)`` pairs; returns window-escalation
        count (the GPMA layer prices escalations).

        Duplicate keys (already present or repeated in ``items``) raise
        :class:`PmaError`. Items are processed sorted, one leaf-group at
        a time, re-locating after structural changes. The vectorized
        path accepts an ``(n, 2)`` int64 array and merges every
        non-escalating run of groups with one ``searchsorted`` and one
        allocation.
        """
        if self._vec:
            return self._batch_insert_vec(items)
        pend = sorted(tuple(e) for e in items)
        for a, b in zip(pend, pend[1:]):
            if a[0] == b[0]:
                raise PmaError(f"duplicate key {a[0]} in batch")
        escalations = 0
        idx = 0
        while idx < len(pend):
            # root density bound: tau(height) is exactly TAU_ROOT for a
            # multi-segment array (TAU_LEAF for a single segment)
            tau_root = self.TAU_ROOT if self.height else self.TAU_LEAF
            while self._n + 1 > tau_root * self._capacity:
                self._grow()
                tau_root = self.TAU_ROOT if self.height else self.TAU_LEAF
            seg_idx = self._locate_segment(pend[idx][0])
            # the group = consecutive items landing in this segment: all
            # pending keys below the next non-empty segment's first key
            # (one bisect over the sorted batch instead of a re-locate
            # per item)
            seg = self._segments[seg_idx]
            j = bisect_left(pend, (self._next_first(seg_idx), _NEG_INF), idx)
            group = pend[idx:j]
            # leaf bound: tau(0) == TAU_LEAF == 1.0, so room is the
            # segment's physical free space
            room = self._segment_size - len(seg)
            if len(group) <= room:
                for k, v in group:
                    i = bisect_left(seg, (k, _NEG_INF))
                    if i < len(seg) and seg[i][0] == k:
                        raise PmaError(f"key {k} already present")
                    seg.insert(i, (k, v))
                    self.opstats.element_moves += len(seg) - i
                self._n += len(group)
                self._refresh_first(seg_idx)
                self.opstats.segments_touched += 1
                idx = j
            else:
                # escalate: rebalance a window wide enough for part of the
                # group, then retry the remaining items (leaf map changed)
                take = min(len(group), max(room, 1))
                for k, v in group[:take]:
                    i = bisect_left(seg, (k, _NEG_INF))
                    if i < len(seg) and seg[i][0] == k:
                        raise PmaError(f"key {k} already present")
                    seg.insert(i, (k, v))
                self._n += take
                self._refresh_first(seg_idx)
                self._rebalance_up(seg_idx, for_insert=True)
                escalations += 1
                idx += take
        return escalations

    def _batch_insert_vec(self, items) -> int:
        arr = xp.asarray(items, dtype=xp.int64).reshape(-1, 2)
        if not len(arr):
            return 0
        order = xp.argsort(arr[:, 0], kind="stable")
        pk, pv = arr[:, 0][order], arr[:, 1][order]
        dup = pk[1:] == pk[:-1]
        if dup.any():
            raise PmaError(f"duplicate key {int(pk[1:][dup][0])} in batch")
        escalations = 0
        start = 0
        # pending-key owners survive merges (new elements never lower a
        # later segment's first key below a pending key), so they are
        # computed once and re-derived only after a resize (everything
        # moves) or a spread (keys in the window's range may migrate in)
        all_owners = self._owners_bulk(pk)
        while start < len(pk):
            tau_root = self.TAU_ROOT if self.height else self.TAU_LEAF
            grew = False
            while self._n + 1 > tau_root * self._capacity:
                self._grow()
                grew = True
                tau_root = self.TAU_ROOT if self.height else self.TAU_LEAF
            if grew:
                all_owners[start:] = self._owners_bulk(pk[start:])
            rem_k, rem_v = pk[start:], pv[start:]
            owners = all_owners[start:]
            change = xp.flatnonzero(owners[1:] != owners[:-1]) + 1
            g_starts = xp.concatenate(([0], change))
            g_ends = xp.concatenate((change, [len(owners)]))
            g_seg = owners[g_starts]
            g_size = g_ends - g_starts
            room = self._segment_size - self._acounts[g_seg]
            # a group is deferred to its own escalation pass when it
            # overflows its leaf or when the root bound trips first
            n_before = self._n + xp.concatenate(([0], xp.cumsum(g_size)[:-1]))
            blocked = (g_size > room) | (n_before + 1 > tau_root * self._capacity)
            nb = xp.flatnonzero(blocked)
            k = int(nb[0]) if len(nb) else len(g_seg)
            if k > 0:
                upto = int(g_ends[k - 1])
                self._bulk_merge(rem_k[:upto], rem_v[:upto], g_seg[:k], g_size[:k])
                start += upto
                continue
            # k == 0 always means overflow (the top-of-loop grow check is
            # exactly the root-bound test for the first group):
            # escalation on the first group, scalar-identical accounting
            self.opstats.locates += 1
            seg_idx = int(g_seg[0])
            room0 = int(room[0])
            take = min(int(g_size[0]), max(room0, 1))
            self._seg_insert_unpriced(seg_idx, rem_k[:take], rem_v[:take])
            self._n += take
            # no interim first-key refresh: an insert rebalance always
            # ends in a spread or a grow, both of which recompute them
            cap_before = self._capacity
            self._last_spread = None
            self._rebalance_up(seg_idx, for_insert=True)
            escalations += 1
            start += take
            if self._capacity != cap_before:
                all_owners[start:] = self._owners_bulk(pk[start:])
            elif self._last_spread is not None:
                # a spread only reassigns keys whose pre-spread owner lay
                # inside the window (segments left of it keep strictly
                # smaller firsts, right of it strictly larger ones) —
                # including pending keys clamped to owner 0
                ws, we = self._last_spread
                tail = all_owners[start:]
                aff = (tail >= ws) & (tail < we)
                if aff.any():
                    tail[aff] = self._owners_bulk(pk[start:][aff])
        return escalations

    def _bulk_merge(
        self,
        keys: xp.ndarray,
        vals: xp.ndarray,
        g_seg: xp.ndarray,
        g_size: xp.ndarray,
    ) -> None:
        """Merge a run of whole groups, each fitting its segment, in one
        sorted-merge: stats match the scalar per-item inserts exactly.

        Only the touched segments are gathered and rewritten — their
        concatenation is itself sorted (segments partition the key space
        in order), so positions, presence and the merge all work on the
        O(|touched|) view instead of the whole array."""
        self.opstats.locates += len(g_seg)
        self.opstats.segments_touched += len(g_seg)
        stride = self._segment_size + 1
        counts_t = self._acounts[g_seg]
        bases_t = g_seg * stride
        slots_t = _slots_of(counts_t, bases_t)
        tk = self._akeys[slots_t]
        tv = self._avals[slots_t]
        t_offsets = xp.empty(len(g_seg) + 1, dtype=xp.int64)
        t_offsets[0] = 0
        xp.cumsum(counts_t, out=t_offsets[1:])
        n_old = len(tk)
        pos = xp.searchsorted(tk, keys)
        if n_old:
            pc = xp.minimum(pos, n_old - 1)
            present = (tk[pc] == keys) & (pos < n_old)
            if present.any():
                raise PmaError(f"key {int(keys[xp.flatnonzero(present)[0]])} already present")
        # scalar inserts a group's items smallest-first: the t-th item
        # lands at within-segment position p_t + t of a segment holding
        # L + t elements, so its move cost is (L + t + 1) - (p_t + t)
        gidx = xp.repeat(xp.arange(len(g_seg), dtype=xp.int64), g_size)
        within = pos - t_offsets[gidx]
        self.opstats.element_moves += int(xp.sum(counts_t[gidx] + 1 - within))
        # only elements at-or-after an insertion point within their own
        # segment shift (right, by the number of new keys before them);
        # everything else keeps its slot, so the merge scatters just the
        # shifted suffixes and the new keys instead of rewriting every
        # touched segment
        gs_cum_ex = xp.cumsum(g_size) - g_size
        slot_new = bases_t[gidx] + within + xp.arange(len(keys), dtype=xp.int64) - gs_cum_ex[gidx]
        if n_old:
            inc = xp.bincount(pos, minlength=n_old + 1)
            shift = xp.cumsum(inc)[:n_old]  # new keys at merged pos <= j
            shift -= xp.repeat(gs_cum_ex, counts_t)  # drop earlier groups
            moved = shift > 0
            mslots = slots_t[moved] + shift[moved]
            self._akeys[mslots] = tk[moved]
            self._avals[mslots] = tv[moved]
        self._akeys[slot_new] = keys
        self._avals[slot_new] = vals
        self._acounts[g_seg] = counts_t + g_size
        self._packed_cache = None
        self._n += int(len(keys))
        self._refresh_first_touched(g_seg, bases_t)

    def _seg_insert_unpriced(self, seg_idx: int, keys: xp.ndarray, vals: xp.ndarray) -> None:
        """Merge ``keys`` into one segment without move accounting (the
        scalar escalation path prices the subsequent rebalance instead).
        May overflow into the segment's spare slot."""
        stride = self._segment_size + 1
        base = seg_idx * stride
        cnt = int(self._acounts[seg_idx])
        kseg = self._akeys[base : base + cnt].copy()
        vseg = self._avals[base : base + cnt].copy()
        pos = xp.searchsorted(kseg, keys)
        if cnt:
            pc = xp.minimum(pos, cnt - 1)
            present = (kseg[pc] == keys) & (pos < cnt)
            if present.any():
                raise PmaError(f"key {int(keys[xp.flatnonzero(present)[0]])} already present")
        total = cnt + len(keys)
        dst_new = pos + xp.arange(len(keys), dtype=xp.int64)
        mk = xp.empty(total, dtype=xp.int64)
        mv = xp.empty(total, dtype=xp.int64)
        old_mask = xp.ones(total, dtype=bool)
        old_mask[dst_new] = False
        mk[dst_new] = keys
        mv[dst_new] = vals
        mk[old_mask] = kseg
        mv[old_mask] = vseg
        self._akeys[base : base + total] = mk
        self._avals[base : base + total] = mv
        self._acounts[seg_idx] = total
        self._packed_cache = None

    def batch_delete(self, keys) -> int:
        """Delete many keys; returns escalation count.

        Missing keys raise :class:`PmaError`, and so do keys repeated in
        ``keys`` — a duplicate is rejected up front on **both** arms,
        before any mutation, mirroring :meth:`batch_insert`'s duplicate
        contract (historically the scalar arm deleted the first
        occurrence and raised mid-way on the second).
        """
        if self._vec:
            return self._batch_delete_vec(keys)
        pend = sorted(keys)
        for a, b in zip(pend, pend[1:]):
            if a == b:
                raise PmaError(f"duplicate key {a} in batch")
        escalations = 0
        for key in reversed(pend):
            before = self.opstats.rebalances
            self.delete(key)
            escalations += self.opstats.rebalances - before
        return escalations

    def _batch_delete_vec(self, keys) -> int:
        arr = xp.asarray(list(keys) if not isinstance(keys, xp.ndarray) else keys, dtype=xp.int64)
        if not arr.size:
            return 0
        desc = xp.sort(arr)[::-1]
        dup = desc[1:] == desc[:-1]
        if dup.any():
            # smallest duplicated key == the first duplicate the scalar
            # arm's ascending scan reports
            raise PmaError(f"duplicate key {int(desc[1:][dup][-1])} in batch")
        # a present key's owner is the segment physically holding it, so
        # owners survive across runs: deletes never move elements between
        # segments, and only a spread window / resize invalidates them
        all_owners = self._owners_bulk(desc)
        escalations = 0
        start = 0
        while start < len(desc):
            rem = desc[start:]
            owners = all_owners[start:]
            change = xp.flatnonzero(owners[1:] != owners[:-1]) + 1
            g_starts = xp.concatenate(([0], change))
            g_ends = xp.concatenate((change, [len(owners)]))
            g_seg = owners[g_starts]
            g_size = g_ends - g_starts
            counts = self._acounts[g_seg]
            # rho(0) * segment_size is exact (segment sizes are powers of
            # two >= 4): a segment underflows at its (L - thr + 1)-th
            # delete; until then the scalar path never rebalances
            thr = (self._segment_size // 4) if self.height else 0
            d_trig = counts - thr + 1
            xp.maximum(d_trig, 1, out=d_trig)
            trig = g_size >= d_trig
            if not trig.any():
                self._bulk_remove(rem, owners)
                start += len(rem)
                continue
            # plan a chunk spanning *several* underflow rebalances: walk
            # the groups (descending segments), absorbing deletes and
            # simulating each trigger's rebalance walk against
            # round-start counts minus the chunk's own deletions — exact
            # as long as no planned spread window contains a later
            # group's segment or overlaps another planned window
            # (aligned windows nest or are disjoint, and a spread
            # preserves the element sum of every window containing it,
            # so the simulated counts equal the sequential ones)
            g_seg_h = xp.to_numpy(g_seg)
            g_size_h = xp.to_numpy(g_size)
            g_starts_h = xp.to_numpy(g_starts)
            g_ends_h = xp.to_numpy(g_ends)
            d_trig_h = xp.to_numpy(d_trig)
            trig_idx = xp.to_numpy(xp.flatnonzero(trig)).tolist()
            #: per-segment deletes planned into this chunk / planned
            #: window coverage — the simulation state (host arrays: the
            #: planner only reads device state through the prefix sums)
            acs = _np.zeros(self.n_segments + 1, dtype=_np.int64)
            _np.cumsum(xp.to_numpy(self._acounts), out=acs[1:])
            removed = _np.zeros(self.n_segments, dtype=_np.int64)
            covered = _np.zeros(self.n_segments, dtype=bool)
            windows: list[tuple[int, int, int]] = []  # (start, end, level)
            n_del = 0
            solo_seg = None  # first trigger whose walk resizes: run solo
            pos = 0  # next group not yet planned
            cut = False
            for ti in trig_idx:
                if ti > pos:
                    # absorb the non-trigger groups [pos, ti) wholesale —
                    # up to the first one sitting inside a planned window
                    cov = covered[g_seg_h[pos:ti]]
                    j = (pos + int(xp.argmax(cov))) if cov.any() else ti
                    if j > pos:
                        removed[g_seg_h[pos:j]] = g_size_h[pos:j]
                        n_del = int(g_ends_h[j - 1])
                        pos = j
                    if j < ti:
                        cut = True  # owners/counts stale after a spread
                        break
                s = int(g_seg_h[ti])
                if covered[s]:
                    cut = True
                    break
                dt = int(d_trig_h[ti])
                removed[s] = dt
                level_found = None
                for level in range(1, self.height + 1):
                    ws, we = self._window_bounds(s, level)
                    cap = (we - ws) * self._segment_size
                    count = int(acs[we] - acs[ws]) - int(removed[ws:we].sum())
                    if count >= self._rho(level) * cap:
                        level_found = (ws, we, level)
                        break
                if level_found is None:
                    # root violation -> grow/shrink moves everything;
                    # only exact as a solo round
                    if not windows:
                        solo_seg = s
                        n_del = int(g_starts_h[ti]) + dt
                    else:
                        removed[s] = 0
                    cut = True
                    break
                ws, we, level = level_found
                if bool(covered[ws:we].any()):
                    removed[s] = 0
                    cut = True
                    break  # nested/overlapping spreads: next round
                n_del = int(g_starts_h[ti]) + dt
                windows.append((ws, we, level))
                covered[ws:we] = True
                pos = ti + 1
                if dt < int(g_size_h[ti]):
                    cut = True
                    break  # rest of the group re-locates after the spread
            if not cut and pos < len(g_seg_h):
                # trailing non-trigger groups after the last trigger
                cov = covered[g_seg_h[pos:]]
                j = (pos + int(xp.argmax(cov))) if cov.any() else len(g_seg_h)
                if j > pos:
                    n_del = int(g_ends_h[j - 1])

            if windows and solo_seg is None:
                # one bulk removal across every planned group, then all
                # pairwise-disjoint window spreads in one redistribution
                self._bulk_remove(rem[:n_del], owners[:n_del])
                start += n_del
                self._spread_many(windows)
                escalations += len(windows)
                tail = all_owners[start:]
                aff = xp.zeros(len(tail), dtype=bool)
                for ws, we, _ in windows:
                    aff |= (tail >= ws) & (tail < we)
                if aff.any():
                    tail[aff] = self._owners_bulk(desc[start:][aff])
                continue
            # solo path: cut at the first trigger, delete the prefix,
            # run the real rebalance walk (it may resize)
            self._bulk_remove(rem[:n_del], owners[:n_del])
            start += n_del
            before = self.opstats.rebalances
            cap_before = self._capacity
            self._last_spread = None
            self._rebalance_up(solo_seg, for_insert=False)
            escalations += self.opstats.rebalances - before
            if self._capacity != cap_before:
                # resized: every owner is stale
                all_owners[start:] = self._owners_bulk(desc[start:])
            elif self._last_spread is not None:
                # spread moved elements inside one window only
                s, e = self._last_spread
                tail = all_owners[start:]
                aff = (tail >= s) & (tail < e)
                if aff.any():
                    tail[aff] = self._owners_bulk(desc[start:][aff])
        return escalations

    def _spread_many(self, windows: list[tuple[int, int, int]]) -> None:
        """Execute several pairwise-disjoint window spreads as **one**
        vectorized redistribution: gather the windows' elements in
        ascending segment order, compute every window's even layout with
        prefix-aware counts, and scatter back in one pass. Stats are
        applied per window in the caller's (scalar temporal) order —
        integer accumulation commutes, so totals stay byte-identical to
        interleaved :meth:`_spread` calls. Ends with the same
        first-key refresh a spread performs."""
        stride = self._segment_size + 1
        asc = sorted(windows, key=lambda w: w[0])
        seg_idx = xp.concatenate(
            [xp.arange(ws, we, dtype=xp.int64) for ws, we, _ in asc]
        )
        counts = self._acounts[seg_idx]
        bases = seg_idx * stride
        slots = _slots_of(counts, bases)
        ek = self._akeys[slots]
        ev = self._avals[slots]
        # per-window totals and even layouts, all windows at once: the
        # cumulative counts at each window's end offset give its total,
        # and the leading ``total % width`` segments take one extra
        widths = xp.asarray([we - ws for ws, we, _ in asc], dtype=xp.int64)
        ends = xp.cumsum(widths)
        cum = xp.cumsum(counts)
        csum = cum[ends - 1]
        tot = csum.copy()
        tot[1:] = csum[1:] - csum[:-1]
        base_cnt = tot // widths
        extra = tot - base_cnt * widths
        within = xp.arange(len(seg_idx), dtype=xp.int64) - xp.repeat(
            ends - widths, widths
        )
        new_counts = xp.repeat(base_cnt, widths) + (within < xp.repeat(extra, widths))
        self._acounts[seg_idx] = new_counts
        tot_h = xp.to_numpy(tot).tolist()
        totals = {ws: tot_h[i] for i, (ws, _we, _l) in enumerate(asc)}
        # window sums are preserved, so the per-window element ranges of
        # the gathered arrays and the new slots line up exactly
        nslots = _slots_of(new_counts, bases)
        self._akeys[nslots] = ek
        self._avals[nslots] = ev
        self._packed_cache = None
        for ws, we, level in windows:  # caller order == scalar order
            self.opstats.element_moves += totals[ws]
            self.opstats.rebalances += 1
            self.opstats.max_rebalance_level = max(
                self.opstats.max_rebalance_level, level
            )
            self.opstats.segments_touched += we - ws
        self._refresh_first_touched(seg_idx, bases)

    def _bulk_remove(self, sel_desc: xp.ndarray, owners_desc: xp.ndarray) -> None:
        """Delete a descending run of present keys; stats match per-key
        scalar deletes exactly. Segments may underflow mid-run — the
        caller is responsible for running (or batching) the rebalance
        walks afterwards, and for ensuring the run stops before any
        deletion whose preceding rebalance would have moved elements
        between segments.

        Like :meth:`_bulk_merge`, only the touched segments are
        gathered, compacted and rewritten."""
        asc = sel_desc[::-1]
        own_asc = owners_desc[::-1]
        # group boundaries along the ascending run (owners ascending)
        g_change = xp.flatnonzero(own_asc[1:] != own_asc[:-1]) + 1
        g_starts = xp.concatenate(([0], g_change))
        g_sizes = xp.concatenate((g_change, [len(asc)])) - g_starts
        t_seg = own_asc[g_starts]
        stride = self._segment_size + 1
        counts_t = self._acounts[t_seg]
        bases_t = t_seg * stride
        slots_t = _slots_of(counts_t, bases_t)
        tk = self._akeys[slots_t]
        tv = self._avals[slots_t]
        t_offsets = xp.empty(len(t_seg) + 1, dtype=xp.int64)
        t_offsets[0] = 0
        xp.cumsum(counts_t, out=t_offsets[1:])
        n_old = len(tk)
        pos = xp.searchsorted(tk, asc)
        pc = xp.minimum(pos, max(n_old - 1, 0))
        found = (pos < n_old) & (tk[pc] == asc) if n_old else xp.zeros(len(asc), dtype=bool)
        # duplicate batch keys cannot reach this point: batch_delete
        # rejects them up front on both arms, so a miss here is a
        # genuinely absent key
        if not found.all():
            # the scalar loop raises at the first problem in descending
            # order == the last problem in ascending order
            bad = int(xp.flatnonzero(~found)[-1])
            raise PmaError(f"key {int(asc[bad])} not present")
        self.opstats.locates += len(asc)
        # scalar deletes a segment's keys largest-first: the t-th delete
        # pops position q_t of a segment holding L - t elements, costing
        # (L - 1 - t) - q_t moves; summed per group that is
        # d(L-1) - d(d-1)/2 - sum(positions), with the per-element terms
        # folded into per-group products (within = pos - group offset)
        n_sel = len(asc)
        self.opstats.element_moves += (
            int(xp.sum((counts_t + t_offsets[:-1]) * g_sizes))
            - n_sel
            - int(xp.sum(g_sizes * (g_sizes - 1) // 2))
            - int(xp.sum(pos))
        )
        # only surviving elements after a deletion point within their
        # own segment shift (left, by the number of deletions before
        # them); everything else keeps its slot, so the compaction
        # scatters just the shifted suffixes instead of rewriting every
        # touched segment
        gs_cum_ex = xp.cumsum(g_sizes) - g_sizes
        dec = xp.bincount(pos, minlength=n_old)
        shift = xp.cumsum(dec) - dec  # deletions strictly before j
        shift -= xp.repeat(gs_cum_ex, counts_t)  # drop earlier groups
        moved = (dec == 0) & (shift > 0)
        mslots = slots_t[moved] - shift[moved]
        self._akeys[mslots] = tk[moved]
        self._avals[mslots] = tv[moved]
        self._acounts[t_seg] = counts_t - g_sizes
        self._packed_cache = None
        self._n -= int(len(asc))
        # touched heads may have changed (and later spreads only refresh
        # their own windows), so the firsts always update here
        self._refresh_first_touched(t_seg, bases_t)

    def _next_first(self, seg_idx: int) -> int:
        """First key of the nearest non-empty segment right of
        ``seg_idx``. Scans the fill-forward firsts (ints) instead of
        the segments: the first differing value right of ``seg_idx``
        is exactly that segment's own first key."""
        firsts = self._seg_first
        cur = firsts[seg_idx]
        for j in range(seg_idx + 1, len(firsts)):
            if firsts[j] != cur:
                return firsts[j]
        return 1 << 62

    # ------------------------------------------------------------------
    # rebalancing machinery
    # ------------------------------------------------------------------
    def _window_bounds(self, seg_idx: int, level: int) -> tuple[int, int]:
        width = 1 << level
        start = (seg_idx // width) * width
        return start, min(start + width, self.n_segments)

    def _window_count(self, start: int, end: int) -> int:
        if self._vec:
            return int(self._acounts[start:end].sum())
        return sum(len(self._segments[s]) for s in range(start, end))

    def _rebalance_up(self, seg_idx: int, for_insert: bool) -> None:
        """Walk up from the leaf to the smallest window within bounds,
        then spread its elements evenly; grow/shrink at the root."""
        for level in range(1, self.height + 1):
            start, end = self._window_bounds(seg_idx, level)
            count = self._window_count(start, end)
            n_segs = end - start
            cap = n_segs * self._segment_size
            if for_insert:
                # the second guard ensures an even spread leaves a free
                # slot in every segment, so the retried insert succeeds
                if count <= self._tau(level) * cap and count <= cap - n_segs:
                    self._spread(start, end, level)
                    return
            else:
                if count >= self._rho(level) * cap:
                    self._spread(start, end, level)
                    return
        if for_insert:
            self._grow()
        else:
            self._shrink()

    def _spread(self, start: int, end: int, level: int) -> None:
        """Evenly redistribute the window's elements over its segments."""
        n_segs = end - start
        if self._vec:
            stride = self._segment_size + 1
            bases = xp.arange(start, end, dtype=xp.int64) * stride
            counts = self._acounts[start:end]
            slots = _slots_of(counts, bases)
            ek = self._akeys[slots]
            ev = self._avals[slots]
            base_cnt, extra = divmod(len(ek), n_segs)
            new_counts = xp.full(n_segs, base_cnt, dtype=xp.int64)
            new_counts[:extra] += 1
            self._acounts[start:end] = new_counts
            nslots = _slots_of(new_counts, bases)
            self._akeys[nslots] = ek
            self._avals[nslots] = ev
            self._packed_cache = None
            self._last_spread = (start, end)
            n_elems = len(ek)
        else:
            elems: list[tuple[int, int]] = []
            for s in range(start, end):
                elems.extend(self._segments[s])
            base, extra = divmod(len(elems), n_segs)
            pos = 0
            for s in range(n_segs):
                take = base + (1 if s < extra else 0)
                self._segments[start + s] = elems[pos : pos + take]
                pos += take
            n_elems = len(elems)
        self.opstats.element_moves += n_elems
        self.opstats.rebalances += 1
        self.opstats.max_rebalance_level = max(self.opstats.max_rebalance_level, level)
        self.opstats.segments_touched += n_segs
        self._refresh_first_range(start, end)

    def _grow(self) -> None:
        self._resize(self._capacity * 2)
        self.opstats.grows += 1

    def _shrink(self) -> None:
        if self._capacity <= self.MIN_CAPACITY:
            # nothing to do; allow sparse root at minimum size
            return
        self._resize(self._capacity // 2)
        self.opstats.shrinks += 1

    def _resize(self, new_capacity: int) -> None:
        if self._vec:
            pk, pv, _ = self._packed()
            if len(pk) > new_capacity:
                raise PmaError(f"cannot resize to {new_capacity} with {len(pk)} elements")
            self._capacity = max(self.MIN_CAPACITY, new_capacity)
            self._segment_size = _segment_size_for(self._capacity)
            n_segs = self._capacity // self._segment_size
            self._height = max(0, (n_segs - 1).bit_length())
            self._alloc_arrays(n_segs)
            self._seg_first = xp.full(n_segs, _NEG_INF, dtype=xp.int64)
            self._distribute_evenly(pk, pv)
            self.opstats.element_moves += len(pk)
            return
        elems = list(self.items())
        if len(elems) > new_capacity:
            raise PmaError(f"cannot resize to {new_capacity} with {len(elems)} elements")
        self._capacity = max(self.MIN_CAPACITY, new_capacity)
        self._segment_size = _segment_size_for(self._capacity)
        n_segs = self._capacity // self._segment_size
        self._segments = [[] for _ in range(n_segs)]
        self._height = max(0, (n_segs - 1).bit_length())
        base, extra = divmod(len(elems), n_segs)
        pos = 0
        for s in range(n_segs):
            take = base + (1 if s < extra else 0)
            self._segments[s] = elems[pos : pos + take]
            pos += take
        self.opstats.element_moves += len(elems)
        self._seg_first = [_NEG_INF] * n_segs
        self._refresh_first_range(0, n_segs)

    def _refresh_first(self, seg_idx: int) -> None:
        self._refresh_first_range(seg_idx, seg_idx + 1)

    def _refresh_first_all(self) -> None:
        """Vectorized full recompute of the fill-forward first keys:
        non-empty firsts are non-decreasing, so the fill-forward is a
        running maximum over ``NEG_INF``-masked segment heads."""
        firsts = xp.where(self._acounts > 0, self._akeys[self._seg_heads], _NEG_INF)
        xp.maximum.accumulate(firsts, out=firsts)
        self._seg_first = firsts

    def _refresh_first_touched(self, t_seg: xp.ndarray, bases: xp.ndarray) -> None:
        """Update fill-forward firsts after mutating segments ``t_seg``
        (whose head slots are ``bases``): while no segment anywhere is
        empty, no first key is inherited, so only the touched segments'
        own heads can differ — a scatter replaces the full recompute.
        Any empty segment falls back to :meth:`_refresh_first_all`."""
        if bool((self._acounts == 0).any()):
            self._refresh_first_all()
            return
        self._seg_first[t_seg] = self._akeys[bases]

    def _refresh_first_range(self, start: int, end: int) -> None:
        """Recompute fill-forward first keys for ``[start, end)`` and any
        trailing empty segments whose inherited value may have changed."""
        if self._vec:
            self._refresh_first_all()
            return
        prev = self._seg_first[start - 1] if start > 0 else _NEG_INF
        for s in range(start, self.n_segments):
            seg = self._segments[s]
            if seg:
                if s >= end:
                    # untouched non-empty segment: everything after is stable
                    break
                prev = seg[0][0]
            self._seg_first[s] = prev

    # ------------------------------------------------------------------
    # validation (used heavily by property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`PmaError` on any structural violation."""
        if self._vec:
            self._check_invariants_vec()
            return
        last = _NEG_INF
        count = 0
        for s, seg in enumerate(self._segments):
            if len(seg) > self._segment_size:
                raise PmaError(f"segment {s} overflows: {len(seg)} > {self._segment_size}")
            for k, _ in seg:
                if k <= last:
                    raise PmaError(f"key order violated at segment {s}: {k} <= {last}")
                last = k
            count += len(seg)
        if count != self._n:
            raise PmaError(f"element count mismatch: {count} != {self._n}")
        if self._capacity != self.n_segments * self._segment_size:
            raise PmaError("capacity != n_segments * segment_size")
        # fill-forward firsts must match actual firsts
        prev = _NEG_INF
        for s, seg in enumerate(self._segments):
            expect = seg[0][0] if seg else prev
            if self._seg_first[s] != expect:
                raise PmaError(f"seg_first[{s}] = {self._seg_first[s]}, expected {expect}")
            prev = expect

    def _check_invariants_vec(self) -> None:
        counts = self._acounts
        over = xp.flatnonzero((counts > self._segment_size) | (counts < 0))
        if len(over):
            s = int(over[0])
            raise PmaError(
                f"segment {s} overflows: {int(counts[s])} > {self._segment_size}"
            )
        pk, _, offsets = self._packed()
        bad = xp.flatnonzero(xp.diff(pk) <= 0)
        if len(bad):
            i = int(bad[0]) + 1
            s = int(xp.searchsorted(offsets, i, side="right")) - 1
            raise PmaError(
                f"key order violated at segment {s}: {int(pk[i])} <= {int(pk[i - 1])}"
            )
        if int(counts.sum()) != self._n:
            raise PmaError(f"element count mismatch: {int(counts.sum())} != {self._n}")
        if self._capacity != self.n_segments * self._segment_size:
            raise PmaError("capacity != n_segments * segment_size")
        stride = self._segment_size + 1
        n_segs = self.n_segments
        expect = xp.full(n_segs, _NEG_INF, dtype=xp.int64)
        nonempty = counts > 0
        heads = xp.arange(n_segs, dtype=xp.int64) * stride
        expect[nonempty] = self._akeys[heads[nonempty]]
        xp.maximum.accumulate(expect, out=expect)
        diff = xp.flatnonzero(xp.asarray(self._seg_first) != expect)
        if len(diff):
            s = int(diff[0])
            raise PmaError(
                f"seg_first[{s}] = {int(self._seg_first[s])}, expected {int(expect[s])}"
            )


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


def _segment_size_for(capacity: int) -> int:
    """Θ(log capacity) rounded to a power of two, at least 4."""
    log = max(4, capacity.bit_length())
    return min(_next_pow2(log), capacity)
