"""Packed Memory Array: sorted keys with gaps, O(log² n) amortized updates.

The classic Bender/Hu structure: a power-of-two array split into
Θ(log n)-sized segments; an implicit binary tree of *windows* (aligned
runs of segments) enforces density bounds that loosen toward the leaves
for inserts (root 0.75 → leaf 1.0) and tighten for deletes (root 0.50 →
leaf 0.25). A violated window is rebalanced by spreading its elements
evenly; a violated root grows/shrinks the array.

Elements are ``(key, value)`` pairs left-packed inside each segment, so
the global key order is the concatenation of segment prefixes — the
layout GPMA uses so GPU warps can scan ranges coalescedly.

Rebalance/location work is recorded in ``opstats`` so the GPMA layer
can translate structural effort into simulated GPU cycles.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import PmaError

_NEG_INF = -1  # sentinel first-key for leading empty segments (keys are >= 0)


@dataclass
class PmaOpStats:
    """Structural work counters, reset at the caller's discretion."""

    locates: int = 0
    element_moves: int = 0
    rebalances: int = 0
    max_rebalance_level: int = 0
    grows: int = 0
    shrinks: int = 0
    segments_touched: int = 0

    def reset(self) -> None:
        self.locates = 0
        self.element_moves = 0
        self.rebalances = 0
        self.max_rebalance_level = 0
        self.grows = 0
        self.shrinks = 0
        self.segments_touched = 0


class PMA:
    """Packed memory array of ``(int key, int value)`` with unique keys."""

    MIN_CAPACITY = 8

    # density bounds: tau (upper) interpolates root->leaf, rho (lower) likewise
    TAU_ROOT = 0.75
    TAU_LEAF = 1.00
    RHO_ROOT = 0.50
    RHO_LEAF = 0.25

    def __init__(self, capacity: int = MIN_CAPACITY) -> None:
        capacity = max(self.MIN_CAPACITY, _next_pow2(capacity))
        self._capacity = capacity
        self._segment_size = _segment_size_for(capacity)
        self._segments: list[list[tuple[int, int]]] = [
            [] for _ in range(capacity // self._segment_size)
        ]
        self._seg_first: list[int] = [_NEG_INF] * len(self._segments)
        self._n = 0
        self._height = max(0, (len(self._segments) - 1).bit_length())
        self.opstats = PmaOpStats()

    @classmethod
    def bulk_load(cls, items: list[tuple[int, int]]) -> "PMA":
        """Build a PMA from sorted-or-not ``(key, value)`` pairs at ~60%
        density (the initialization path: the data graph is loaded once,
        then evolves through batch updates)."""
        elems = sorted(items)
        for a, b in zip(elems, elems[1:]):
            if a[0] == b[0]:
                raise PmaError(f"duplicate key {a[0]} in bulk load")
        capacity = _next_pow2(max(cls.MIN_CAPACITY, int(len(elems) / 0.6) + 1))
        pma = cls(capacity)
        n_segs = pma.n_segments
        base, extra = divmod(len(elems), n_segs)
        pos = 0
        for s in range(n_segs):
            take = base + (1 if s < extra else 0)
            pma._segments[s] = elems[pos : pos + take]
            pos += take
        pma._n = len(elems)
        pma._refresh_first_range(0, n_segs)
        return pma

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def segment_size(self) -> int:
        return self._segment_size

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def height(self) -> int:
        """Levels of the window tree (0 = leaf ... height = root);
        cached, recomputed on resize."""
        return self._height

    def __len__(self) -> int:
        return self._n

    def _tau(self, level: int) -> float:
        """Upper density bound at window ``level`` (0 = leaf)."""
        h = self.height
        if h == 0:
            return self.TAU_LEAF
        return self.TAU_LEAF + (self.TAU_ROOT - self.TAU_LEAF) * level / h

    def _rho(self, level: int) -> float:
        """Lower density bound at window ``level`` (0 = leaf)."""
        h = self.height
        if h == 0:
            return 0.0
        return self.RHO_LEAF + (self.RHO_ROOT - self.RHO_LEAF) * level / h

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _locate_segment(self, key: int) -> int:
        """Index of the segment whose key range covers ``key``.

        Fill-forward first keys make empty segments inherit their left
        neighbor's first, so the bisect can land inside an empty run;
        the owning segment is the nearest non-empty one to the left.
        """
        self.opstats.locates += 1
        i = bisect_left(self._seg_first, key + 1) - 1
        i = max(0, i)
        while i > 0 and not self._segments[i]:
            i -= 1
        return i

    def lookup(self, key: int) -> Optional[int]:
        """Value stored under ``key`` or None."""
        seg = self._segments[self._locate_segment(key)]
        i = bisect_left(seg, (key, _NEG_INF))
        if i < len(seg) and seg[i][0] == key:
            return seg[i][1]
        return None

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None

    def keys(self) -> Iterator[int]:
        for seg in self._segments:
            for k, _ in seg:
                yield k

    def items(self) -> Iterator[tuple[int, int]]:
        for seg in self._segments:
            yield from seg

    def range_items(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """All ``(key, value)`` with ``lo <= key < hi`` in key order."""
        out: list[tuple[int, int]] = []
        s = self._locate_segment(lo)
        for seg_idx in range(s, self.n_segments):
            seg = self._segments[seg_idx]
            if not seg:
                continue
            if seg[0][0] >= hi:
                break
            start = bisect_left(seg, (lo, _NEG_INF))
            for k, v in seg[start:]:
                if k >= hi:
                    return out
                out.append((k, v))
        return out

    # ------------------------------------------------------------------
    # single-element updates
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int = 0) -> None:
        """Insert a new key (raises :class:`PmaError` if present)."""
        if self._n + 1 > self._tau(self.height) * self._capacity:
            self._grow()
        seg_idx = self._locate_segment(key)
        seg = self._segments[seg_idx]
        i = bisect_left(seg, (key, _NEG_INF))
        if i < len(seg) and seg[i][0] == key:
            raise PmaError(f"key {key} already present")
        if len(seg) + 1 <= self._segment_size:
            seg.insert(i, (key, value))
            self._n += 1
            self.opstats.element_moves += len(seg) - i
            self._refresh_first(seg_idx)
            # leaf density may now violate tau(0) only when seg full; the
            # check below escalates if the leaf exceeded its bound
            if len(seg) > self._tau(0) * self._segment_size:
                self._rebalance_up(seg_idx, for_insert=True)
            return
        # leaf physically full: escalate, then retry (a slot must exist now)
        self._rebalance_up(seg_idx, for_insert=True)
        self.insert(key, value)

    def delete(self, key: int) -> int:
        """Remove ``key``; returns its value. Raises if missing."""
        seg_idx = self._locate_segment(key)
        seg = self._segments[seg_idx]
        i = bisect_left(seg, (key, _NEG_INF))
        if i >= len(seg) or seg[i][0] != key:
            raise PmaError(f"key {key} not present")
        _, value = seg.pop(i)
        self._n -= 1
        self.opstats.element_moves += len(seg) - i
        self._refresh_first(seg_idx)
        if len(seg) < self._rho(0) * self._segment_size:
            self._rebalance_up(seg_idx, for_insert=False)
        return value

    # ------------------------------------------------------------------
    # batch updates (GPMA-style: group by leaf segment, escalate windows)
    # ------------------------------------------------------------------
    def batch_insert(self, items: list[tuple[int, int]]) -> int:
        """Insert many ``(key, value)`` pairs; returns window-escalation
        count (the GPMA layer prices escalations).

        Duplicate keys (already present or repeated in ``items``) raise
        :class:`PmaError`. Items are processed sorted, one leaf-group at
        a time, re-locating after structural changes.
        """
        pend = sorted(items)
        for a, b in zip(pend, pend[1:]):
            if a[0] == b[0]:
                raise PmaError(f"duplicate key {a[0]} in batch")
        escalations = 0
        idx = 0
        while idx < len(pend):
            # root density bound: tau(height) is exactly TAU_ROOT for a
            # multi-segment array (TAU_LEAF for a single segment)
            tau_root = self.TAU_ROOT if self.height else self.TAU_LEAF
            while self._n + 1 > tau_root * self._capacity:
                self._grow()
                tau_root = self.TAU_ROOT if self.height else self.TAU_LEAF
            seg_idx = self._locate_segment(pend[idx][0])
            # the group = consecutive items landing in this segment: all
            # pending keys below the next non-empty segment's first key
            # (one bisect over the sorted batch instead of a re-locate
            # per item)
            seg = self._segments[seg_idx]
            j = bisect_left(pend, (self._next_first(seg_idx), _NEG_INF), idx)
            group = pend[idx:j]
            # leaf bound: tau(0) == TAU_LEAF == 1.0, so room is the
            # segment's physical free space
            room = self._segment_size - len(seg)
            if len(group) <= room:
                for k, v in group:
                    i = bisect_left(seg, (k, _NEG_INF))
                    if i < len(seg) and seg[i][0] == k:
                        raise PmaError(f"key {k} already present")
                    seg.insert(i, (k, v))
                    self.opstats.element_moves += len(seg) - i
                self._n += len(group)
                self._refresh_first(seg_idx)
                self.opstats.segments_touched += 1
                idx = j
            else:
                # escalate: rebalance a window wide enough for part of the
                # group, then retry the remaining items (leaf map changed)
                take = min(len(group), max(room, 1))
                for k, v in group[:take]:
                    i = bisect_left(seg, (k, _NEG_INF))
                    if i < len(seg) and seg[i][0] == k:
                        raise PmaError(f"key {k} already present")
                    seg.insert(i, (k, v))
                self._n += take
                self._refresh_first(seg_idx)
                self._rebalance_up(seg_idx, for_insert=True)
                escalations += 1
                idx += take
        return escalations

    def batch_delete(self, keys: list[int]) -> int:
        """Delete many keys; returns escalation count. Missing keys raise."""
        escalations = 0
        for key in sorted(keys, reverse=True):
            before = self.opstats.rebalances
            self.delete(key)
            escalations += self.opstats.rebalances - before
        return escalations

    def _next_first(self, seg_idx: int) -> int:
        """First key of the nearest non-empty segment right of
        ``seg_idx``. Scans the fill-forward firsts (ints) instead of
        the segments: the first differing value right of ``seg_idx``
        is exactly that segment's own first key."""
        firsts = self._seg_first
        cur = firsts[seg_idx]
        for j in range(seg_idx + 1, len(firsts)):
            if firsts[j] != cur:
                return firsts[j]
        return 1 << 62

    # ------------------------------------------------------------------
    # rebalancing machinery
    # ------------------------------------------------------------------
    def _window_bounds(self, seg_idx: int, level: int) -> tuple[int, int]:
        width = 1 << level
        start = (seg_idx // width) * width
        return start, min(start + width, self.n_segments)

    def _window_count(self, start: int, end: int) -> int:
        return sum(len(self._segments[s]) for s in range(start, end))

    def _rebalance_up(self, seg_idx: int, for_insert: bool) -> None:
        """Walk up from the leaf to the smallest window within bounds,
        then spread its elements evenly; grow/shrink at the root."""
        for level in range(1, self.height + 1):
            start, end = self._window_bounds(seg_idx, level)
            count = self._window_count(start, end)
            n_segs = end - start
            cap = n_segs * self._segment_size
            if for_insert:
                # the second guard ensures an even spread leaves a free
                # slot in every segment, so the retried insert succeeds
                if count <= self._tau(level) * cap and count <= cap - n_segs:
                    self._spread(start, end, level)
                    return
            else:
                if count >= self._rho(level) * cap:
                    self._spread(start, end, level)
                    return
        if for_insert:
            self._grow()
        else:
            self._shrink()

    def _spread(self, start: int, end: int, level: int) -> None:
        """Evenly redistribute the window's elements over its segments."""
        elems: list[tuple[int, int]] = []
        for s in range(start, end):
            elems.extend(self._segments[s])
        n_segs = end - start
        base, extra = divmod(len(elems), n_segs)
        pos = 0
        for s in range(n_segs):
            take = base + (1 if s < extra else 0)
            self._segments[start + s] = elems[pos : pos + take]
            pos += take
        self.opstats.element_moves += len(elems)
        self.opstats.rebalances += 1
        self.opstats.max_rebalance_level = max(self.opstats.max_rebalance_level, level)
        self.opstats.segments_touched += n_segs
        self._refresh_first_range(start, end)

    def _grow(self) -> None:
        self._resize(self._capacity * 2)
        self.opstats.grows += 1

    def _shrink(self) -> None:
        if self._capacity <= self.MIN_CAPACITY:
            # nothing to do; allow sparse root at minimum size
            return
        self._resize(self._capacity // 2)
        self.opstats.shrinks += 1

    def _resize(self, new_capacity: int) -> None:
        elems = list(self.items())
        if len(elems) > new_capacity:
            raise PmaError(f"cannot resize to {new_capacity} with {len(elems)} elements")
        self._capacity = max(self.MIN_CAPACITY, new_capacity)
        self._segment_size = _segment_size_for(self._capacity)
        n_segs = self._capacity // self._segment_size
        self._segments = [[] for _ in range(n_segs)]
        self._height = max(0, (n_segs - 1).bit_length())
        base, extra = divmod(len(elems), n_segs)
        pos = 0
        for s in range(n_segs):
            take = base + (1 if s < extra else 0)
            self._segments[s] = elems[pos : pos + take]
            pos += take
        self.opstats.element_moves += len(elems)
        self._seg_first = [_NEG_INF] * n_segs
        self._refresh_first_range(0, n_segs)

    def _refresh_first(self, seg_idx: int) -> None:
        self._refresh_first_range(seg_idx, seg_idx + 1)

    def _refresh_first_range(self, start: int, end: int) -> None:
        """Recompute fill-forward first keys for ``[start, end)`` and any
        trailing empty segments whose inherited value may have changed."""
        prev = self._seg_first[start - 1] if start > 0 else _NEG_INF
        for s in range(start, self.n_segments):
            seg = self._segments[s]
            if seg:
                if s >= end:
                    # untouched non-empty segment: everything after is stable
                    break
                prev = seg[0][0]
            self._seg_first[s] = prev

    # ------------------------------------------------------------------
    # validation (used heavily by property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`PmaError` on any structural violation."""
        last = _NEG_INF
        count = 0
        for s, seg in enumerate(self._segments):
            if len(seg) > self._segment_size:
                raise PmaError(f"segment {s} overflows: {len(seg)} > {self._segment_size}")
            for k, _ in seg:
                if k <= last:
                    raise PmaError(f"key order violated at segment {s}: {k} <= {last}")
                last = k
            count += len(seg)
        if count != self._n:
            raise PmaError(f"element count mismatch: {count} != {self._n}")
        if self._capacity != self.n_segments * self._segment_size:
            raise PmaError("capacity != n_segments * segment_size")
        # fill-forward firsts must match actual firsts
        prev = _NEG_INF
        for s, seg in enumerate(self._segments):
            expect = seg[0][0] if seg else prev
            if self._seg_first[s] != expect:
                raise PmaError(f"seg_first[{s}] = {self._seg_first[s]}, expected {expect}")
            prev = expect


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


def _segment_size_for(capacity: int) -> int:
    """Θ(log capacity) rounded to a power of two, at least 4."""
    log = max(4, capacity.bit_length())
    return min(_next_pow2(log), capacity)
