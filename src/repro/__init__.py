"""GAMMA: GPU-Accelerated Batch-Dynamic Subgraph Matching (ICDE 2024).

A complete reproduction of the paper's system on a simulated SIMT GPU,
grown into a multi-query serving stack:

* :class:`~repro.service.MatchingService` — N concurrent queries over
  one shared :class:`~repro.service.DynamicGraphStore` (one graph, one
  GPMA, one encoding table; each batch applied exactly once);
* :class:`~repro.pipeline.gamma.GammaSystem` — the single-query
  end-to-end system (preprocess → GPMA update → WBM kernel →
  postprocess), a thin wrapper over the service;
* :class:`~repro.matching.wbm.WBMEngine` — the warp-centric DFS kernel
  with work stealing and coalesced search, split into a shared store
  plus a per-query :class:`~repro.matching.wbm.QueryRuntime`;
* :mod:`repro.baselines` — TurboFlux / SymBi / RapidFlow / CaLiG
  reimplementations;
* :mod:`repro.gpu` — the virtual GPU substrate;
* :mod:`repro.pma` — PMA / GPMA dynamic graph container;
* :mod:`repro.bench` — workloads, harness, and reporting for every
  table and figure in the paper's evaluation.

Single-query quickstart::

    from repro import GammaSystem, LabeledGraph, make_batch

    query = LabeledGraph.from_edges([0, 1, 1, 2], [(0, 1), (0, 2), (1, 2), (1, 3)])
    data = LabeledGraph.from_edges([0, 1, 1, 2], [(0, 1), (1, 2), (1, 3)])
    system = GammaSystem(query, data)
    report = system.process_batch(make_batch([("+", 0, 2)]))
    print(report.result.positives)

Multi-query serving::

    from repro import MatchingService

    service = MatchingService(data)
    service.register_query(query_a, name="fraud-ring")
    service.register_query(query_b, name="fanout")
    report = service.process_batch(make_batch([("+", 0, 2)]))
    print(report.queries["fraud-ring"].result.positives)
"""

from repro.errors import (
    BenchmarkError,
    BudgetExceeded,
    DeviceMemoryError,
    GpuError,
    GraphError,
    MatchingError,
    PmaError,
    ReproError,
    UpdateError,
)
from repro.graph import (
    CSRGraph,
    LabeledGraph,
    UpdateBatch,
    UpdateOp,
    UpdateStream,
    dataset_summary,
    load_dataset,
)
from repro.graph.updates import apply_batch, effective_delta, make_batch
from repro.gpu import CostTrace, DeviceParams, TraceBuilder, VirtualGPU
from repro.pma import GPMAGraph, PMA
from repro.filtering import CandidateTable, EncodingSchema, EncodingTable
from repro.matching import (
    BFSEngine,
    QueryRuntime,
    WBMConfig,
    WBMEngine,
    build_coalesced_plan,
    find_matches,
    oracle_delta,
)
from repro.baselines import BASELINES, CaLiG, Graphflow, IncIsoMat, RapidFlow, SymBi, TurboFlux
from repro.pipeline import GammaSystem, MatchCollector, PipelineModel
from repro.service import (
    DynamicGraphStore,
    MatchingService,
    ServiceBatchReport,
    StoreCommit,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "GraphError",
    "UpdateError",
    "GpuError",
    "DeviceMemoryError",
    "PmaError",
    "MatchingError",
    "BudgetExceeded",
    "BenchmarkError",
    # graph
    "LabeledGraph",
    "CSRGraph",
    "UpdateOp",
    "UpdateBatch",
    "UpdateStream",
    "make_batch",
    "apply_batch",
    "effective_delta",
    "load_dataset",
    "dataset_summary",
    # substrates
    "CostTrace",
    "DeviceParams",
    "TraceBuilder",
    "VirtualGPU",
    "PMA",
    "GPMAGraph",
    "EncodingSchema",
    "EncodingTable",
    "CandidateTable",
    # matching
    "WBMEngine",
    "WBMConfig",
    "BFSEngine",
    "find_matches",
    "oracle_delta",
    "build_coalesced_plan",
    # baselines
    "BASELINES",
    "TurboFlux",
    "SymBi",
    "RapidFlow",
    "CaLiG",
    "Graphflow",
    "IncIsoMat",
    # system
    "GammaSystem",
    "MatchCollector",
    "PipelineModel",
    # multi-query service
    "DynamicGraphStore",
    "StoreCommit",
    "QueryRuntime",
    "MatchingService",
    "ServiceBatchReport",
    "__version__",
]
