"""Benchmark infrastructure: cost model, workloads, harness, reporting."""

from repro.bench.cost import CostCounter, CostModel, DEFAULT_COST_MODEL

__all__ = ["CostCounter", "CostModel", "DEFAULT_COST_MODEL"]
