"""Experiment harness: runs engines on workloads under a shared budget
and aggregates the paper's metrics (average query latency in model
seconds, unsolved counts, GPU utilization)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from statistics import mean

from repro.baselines import BASELINES
from repro.bench.cost import CYCLES_PER_CPU_OP, CostCounter, CostModel, DEFAULT_COST_MODEL
from repro.bench.workloads import classify_query
from repro.errors import BudgetExceeded
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.updates import UpdateBatch
from repro.gpu.params import DeviceParams
from repro.matching.wbm import WBMConfig
from repro.pipeline.gamma import GammaSystem

#: default per-query operation budget — the analogue of the paper's
#: 30-minute timeout, sized so the pure-Python harness stays fast
DEFAULT_OPS_BUDGET = 1_000_000.0

#: wall-clock safety guard per GAMMA run (degenerate result explosions)
DEFAULT_WALL_LIMIT = 10.0

#: device configuration for benchmarks (paper: RTX 3090, 83 SMs; a
#: fraction of that keeps the simulation quick while preserving shape)
BENCH_PARAMS = DeviceParams(num_sms=16, warps_per_block=8)


@dataclass
class RunResult:
    """Outcome of one engine on one (query, batch) pair."""

    engine: str
    solved: bool
    model_seconds: float
    kernel_seconds: float = 0.0  # BDSM-kernel share (ablation benches)
    positives: int = 0
    negatives: int = 0
    utilization: float | None = None
    steals: int = 0
    wall_seconds: float = 0.0
    query_kind: str = ""


def gamma_cycle_budget(ops_budget: float = DEFAULT_OPS_BUDGET) -> float:
    """Translate the CPU op budget into an equal-*work* busy-cycle
    allowance (see :data:`repro.bench.cost.CYCLES_PER_CPU_OP`), so the
    timeout grants every engine the same abstract amount of search."""
    return ops_budget * CYCLES_PER_CPU_OP


def run_gamma(
    query: LabeledGraph,
    g0: LabeledGraph,
    batch: UpdateBatch,
    params: DeviceParams = BENCH_PARAMS,
    config: WBMConfig | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
    ops_budget: float = DEFAULT_OPS_BUDGET,
    wall_limit: float | None = DEFAULT_WALL_LIMIT,
) -> RunResult:
    """One GAMMA run through the full pipeline."""
    if config is None:
        config = WBMConfig()
    config = replace(
        config,
        cycle_budget=gamma_cycle_budget(ops_budget),
        wall_limit=wall_limit,
    )
    system = GammaSystem(query, g0, params, config, model)
    t0 = time.perf_counter()
    report = system.process_batch(batch)
    wall = time.perf_counter() - t0
    res = report.result
    return RunResult(
        engine="GAMMA",
        solved=not res.aborted,
        model_seconds=report.total_seconds,
        kernel_seconds=report.kernel_seconds,
        positives=len(res.positives),
        negatives=len(res.negatives),
        utilization=res.kernel_stats.utilization,
        steals=res.kernel_stats.steals,
        wall_seconds=wall,
        query_kind=classify_query(query),
    )


def run_baseline(
    name: str,
    query: LabeledGraph,
    g0: LabeledGraph,
    batch: UpdateBatch,
    model: CostModel = DEFAULT_COST_MODEL,
    ops_budget: float = DEFAULT_OPS_BUDGET,
) -> RunResult:
    """One CPU baseline run (sequential CSM over the batch).

    Index construction happens before the measured window, matching the
    paper's methodology of timing query processing, not offline setup.
    """
    cls = BASELINES[name]
    cost = CostCounter()
    engine = cls(query, g0, cost)
    cost.reset()
    cost.budget = ops_budget
    t0 = time.perf_counter()
    solved = True
    positives: set = set()
    negatives: set = set()
    try:
        positives, negatives = engine.process_batch(batch)
    except BudgetExceeded:
        solved = False
    wall = time.perf_counter() - t0
    return RunResult(
        engine=name,
        solved=solved,
        model_seconds=cost.seconds(model),
        positives=len(positives),
        negatives=len(negatives),
        wall_seconds=wall,
        query_kind=classify_query(query),
    )


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------
@dataclass
class Aggregate:
    """Per-(engine, cell) summary mirroring Table III's entries."""

    engine: str
    n_queries: int
    unsolved: int
    avg_latency: float  # over solved queries only (paper's convention)
    avg_utilization: float | None = None
    results: list[RunResult] = field(default_factory=list)

    def cell(self) -> str:
        """Render like the paper: latency with (unsolved) suffix."""
        if self.n_queries == self.unsolved:
            return f"timeout({self.unsolved})"
        text = f"{self.avg_latency:.4g}"
        if self.unsolved:
            text += f"({self.unsolved})"
        return text


def aggregate(results: list[RunResult]) -> Aggregate:
    if not results:
        raise ValueError("no results to aggregate")
    solved = [r for r in results if r.solved]
    utils = [r.utilization for r in solved if r.utilization is not None]
    return Aggregate(
        engine=results[0].engine,
        n_queries=len(results),
        unsolved=sum(1 for r in results if not r.solved),
        avg_latency=mean(r.model_seconds for r in solved) if solved else float("inf"),
        avg_utilization=mean(utils) if utils else None,
        results=list(results),
    )
