"""Workload generation for the evaluation (paper §VI-A).

Queries are random connected subgraphs extracted from the data graph
(so they are guaranteed to have at least one match) and classified as
the paper does: **Dense** (davg ≥ 3), **Sparse** (davg < 3), **Tree**
(|E| = |V| − 1, acyclic). Update workloads follow the standard CSM
holdout methodology: a fraction of edges is removed to form the initial
graph and re-inserted as the batch (insertion rate), deleted in place
(deletion rate), or mixed 2:1 (Figure 11); Figure 10's density workload
samples the held-out edges from within a k-core.
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import BenchmarkError
from repro.graph.kcore import core_numbers
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.updates import UpdateBatch


def classify_query(query: LabeledGraph) -> str:
    """The paper's Dense / Sparse / Tree classes."""
    n, m = query.n_vertices, query.n_edges
    if m == n - 1:
        return "tree"
    if query.avg_degree() >= 3.0:
        return "dense"
    return "sparse"


def _grow_vertex_set(
    graph: LabeledGraph,
    start: int,
    n_vertices: int,
    rng: random.Random,
    prefer_dense: bool,
) -> list[int] | None:
    """Random connected vertex set via degree-biased frontier growth."""
    chosen = [start]
    chosen_set = {start}
    frontier = [w for w in graph.neighbors(start)]
    while len(chosen) < n_vertices:
        frontier = [w for w in frontier if w not in chosen_set]
        if not frontier:
            return None
        if prefer_dense:
            # prefer vertices with many edges back into the chosen set
            weights = [
                1 + sum(1 for x in graph.neighbors(w) if x in chosen_set) ** 2
                for w in frontier
            ]
            nxt = rng.choices(frontier, weights=weights, k=1)[0]
        else:
            nxt = rng.choice(frontier)
        chosen.append(nxt)
        chosen_set.add(nxt)
        frontier.extend(graph.neighbors(nxt))
    return chosen


def _spanning_tree_edges(
    sub: LabeledGraph, rng: random.Random
) -> list[tuple[int, int]]:
    """Random spanning tree via randomized DFS."""
    seen = {0}
    tree: list[tuple[int, int]] = []
    stack = [0]
    while stack:
        u = stack.pop()
        nbrs = list(sub.neighbors(u))
        rng.shuffle(nbrs)
        for w in nbrs:
            if w not in seen:
                seen.add(w)
                tree.append((u, w))
                stack.append(u)
                stack.append(w)
                break
    return tree if len(seen) == sub.n_vertices else []


def extract_query(
    graph: LabeledGraph,
    n_vertices: int,
    kind: str,
    seed: int = 0,
    max_tries: int = 300,
) -> LabeledGraph:
    """Extract one query of the requested class from the data graph.

    Dense queries keep all induced edges of a densely grown region;
    sparse queries keep a spanning tree plus a few extra edges; tree
    queries keep only the spanning tree. Raises
    :class:`BenchmarkError` when the graph cannot yield the class
    (e.g. dense queries from the near-tree NF graph).
    """
    if kind not in ("dense", "sparse", "tree"):
        raise BenchmarkError(f"unknown query kind {kind!r}")
    if n_vertices < 2:
        raise BenchmarkError("queries need >= 2 vertices")
    rng = random.Random(seed)
    cores = core_numbers(graph)
    best: LabeledGraph | None = None
    best_density = -1.0
    starts = [v for v in graph.vertices() if graph.degree(v) > 0]
    if not starts:
        raise BenchmarkError("data graph has no edges")
    if kind == "dense":
        top_core = max(cores)
        rich = [v for v in starts if cores[v] >= max(2, top_core - 1)]
        if rich:
            starts = rich
    for _ in range(max_tries):
        start = rng.choice(starts)
        chosen = _grow_vertex_set(graph, start, n_vertices, rng, kind == "dense")
        if chosen is None:
            continue
        sub, _ = graph.induced_subgraph(chosen)
        if kind == "dense":
            if sub.avg_degree() >= 3.0:
                return sub
            if sub.avg_degree() > best_density:
                best, best_density = sub, sub.avg_degree()
            continue
        tree = _spanning_tree_edges(sub, rng)
        if not tree:
            continue
        if kind == "tree":
            out = LabeledGraph(list(sub.vertex_labels))
            for u, w in tree:
                out.add_edge(u, w, sub.edge_label(u, w))
            return out
        # sparse: tree + a couple of extra induced edges, davg < 3
        out = LabeledGraph(list(sub.vertex_labels))
        for u, w in tree:
            out.add_edge(u, w, sub.edge_label(u, w))
        extras = [e for e in sub.edges() if not out.has_edge(*e)]
        rng.shuffle(extras)
        budget = max(1, (3 * n_vertices - 2) // 2 - (n_vertices - 1) - 1)
        for u, w in extras[:budget]:
            if (2.0 * (out.n_edges + 1)) / n_vertices >= 3.0:
                break
            out.add_edge(u, w, sub.edge_label(u, w))
        if out.n_edges > n_vertices - 1:
            return out
        # fall back to tree-plus-nothing counts as sparse only if cyclic;
        # otherwise retry
    if kind == "dense" and best is not None and best_density >= 2.0:
        return best  # densest available region (NF cannot reach davg 3)
    raise BenchmarkError(f"could not extract a {kind} query of size {n_vertices}")


def make_query_set(
    graph: LabeledGraph,
    n_vertices: int,
    kind: str,
    count: int,
    seed: int = 0,
) -> list[LabeledGraph]:
    """A deterministic set of ``count`` queries of one class/size."""
    out = []
    for i in range(count):
        out.append(extract_query(graph, n_vertices, kind, seed=seed * 1000 + i))
    return out


# ---------------------------------------------------------------------------
# update workloads (holdout methodology)
# ---------------------------------------------------------------------------
def _columnar_batch(rows: list[tuple[int, int, int, int]]) -> UpdateBatch:
    """``(kind, u, v, label)`` rows as a batch with its columnar arrays
    attached at build time — consumers (``effective_delta``) never pay
    the per-op ``fromiter`` rebuild. Shuffling the tuple rows first
    consumes exactly the entropy shuffling an ``UpdateOp`` list would
    (``random.shuffle`` depends only on length), so generated workloads
    are op-for-op identical to the object-based construction."""
    arr = np.asarray(rows, dtype=np.int64).reshape(-1, 4)
    return UpdateBatch.from_columns(arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])


def holdout_workload(
    graph: LabeledGraph,
    rate: float,
    mode: str = "insert",
    seed: int = 0,
    core_k: int | None = None,
) -> tuple[LabeledGraph, UpdateBatch]:
    """Build ``(initial graph, batch)`` for an update workload.

    * ``insert``: hold out ``rate·|E|`` edges; the batch re-inserts them.
    * ``delete``: the batch deletes ``rate·|E|`` random edges.
    * ``mixed``: insert:delete = 2:1 (Figure 11's workload).

    ``core_k`` restricts sampled edges to those inside the k-core
    (Figure 10's density knob).
    """
    if not 0.0 < rate <= 0.5:
        raise BenchmarkError(f"update rate {rate} outside (0, 0.5]")
    if mode not in ("insert", "delete", "mixed"):
        raise BenchmarkError(f"unknown workload mode {mode!r}")
    rng = random.Random(seed)
    edges = list(graph.labeled_edges())
    if core_k is not None:
        cores = core_numbers(graph)
        pool = [(u, v, l) for u, v, l in edges if cores[u] >= core_k and cores[v] >= core_k]
        if len(pool) >= 8:
            edges = pool
    rng.shuffle(edges)
    k = max(2, int(round(rate * graph.n_edges)))
    k = min(k, len(edges))

    if mode == "insert":
        held = edges[:k]
        g0 = graph.copy()
        for u, v, _ in held:
            g0.remove_edge(u, v)
        rows = [(1, u, v, l) for u, v, l in held]
        rng.shuffle(rows)
        return g0, _columnar_batch(rows)

    if mode == "delete":
        victims = edges[:k]
        rows = [(0, u, v, 0) for u, v, _ in victims]
        rng.shuffle(rows)
        return graph.copy(), _columnar_batch(rows)

    # mixed 2:1
    k_ins = max(1, (2 * k) // 3)
    k_del = max(1, k - k_ins)
    held = edges[:k_ins]
    g0 = graph.copy()
    for u, v, _ in held:
        g0.remove_edge(u, v)
    remaining = [e for e in edges[k_ins : k_ins + 3 * k_del] if g0.has_edge(e[0], e[1])]
    rows = [(1, u, v, l) for u, v, l in held]
    rows += [(0, u, v, 0) for u, v, _ in remaining[:k_del]]
    rng.shuffle(rows)
    return g0, _columnar_batch(rows)


def holdout_stream(
    graph: LabeledGraph,
    rate: float,
    n_batches: int,
    mode: str = "insert",
    seed: int = 0,
):
    """Consecutive batches for pipeline experiments: the holdout edges
    are split across ``n_batches`` insert batches."""
    g0, batch = holdout_workload(graph, rate, mode=mode, seed=seed)
    from repro.graph.updates import UpdateStream

    n_batches = max(1, min(n_batches, len(batch)))
    base, extra = divmod(len(batch), n_batches)
    batches = []
    pos = 0
    for i in range(n_batches):
        take = base + (1 if i < extra else 0)
        batches.append(batch.subbatch(pos, pos + take))
        pos += take
    return g0, UpdateStream(batches)


# ---------------------------------------------------------------------------
# hub-heavy synthetic schedule (fused Gen-Candidates showcase)
# ---------------------------------------------------------------------------
def hub_schedule(
    n_hubs: int = 6,
    n_leaves: int = 420,
    span: int = 3,
    n_inserts: int = 32,
) -> tuple[LabeledGraph, UpdateBatch, LabeledGraph]:
    """A bipartite hub/leaf graph plus an insert batch engineered so the
    serving launch is dominated by candidate generation over shared hub
    adjacencies: every hub connects to ``span/n_hubs`` of the leaves
    (hub degree ``≈ span·n_leaves/n_hubs``), the batch inserts missing
    hub–leaf edges, and the returned query is the 5-cycle — the host
    graph is bipartite, so the query has **zero** matches and the whole
    launch is Gen-Candidates work plus failed closing intersections.
    Update edges land on the same few hubs, which makes sibling warp
    tasks share anchors (the fused batch + hub-slice cache sweet spot).
    """
    edges = []
    for i in range(n_hubs):
        for j in range(n_leaves):
            if (i + j) % n_hubs < span:
                edges.append((i, n_hubs + j))
    g0 = LabeledGraph.from_edges([0] * (n_hubs + n_leaves), edges)
    rows = []
    for j in range(n_leaves):
        for i in range(n_hubs):
            if len(rows) >= n_inserts:
                break
            if not g0.has_edge(i, n_hubs + j):
                rows.append((1, i, n_hubs + j, 0))
    query = LabeledGraph.from_edges(
        [0] * 5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]
    )
    return g0, _columnar_batch(rows), query
