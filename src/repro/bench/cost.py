"""The common abstract cost model (DESIGN.md §1).

All engines are measured in *model seconds* so a simulated GPU kernel
and a reimplemented CPU baseline stay comparable:

* CPU baselines count primitive operations (candidate checks, index
  transitions, adjacency probes) through a :class:`CostCounter`;
  seconds = ops × ``cpu_op_seconds``.
* GAMMA's latency is simulated device cycles / ``gpu_clock_hz``.

Calibration is deliberately conservative: one GPU lane-cycle does
*less* than one CPU op (`cpu_op_seconds ≈ 28 GPU cycles`), so any win
GAMMA shows comes from parallel occupancy and algorithmic savings, not
from a biased constant — and small workloads that cannot saturate the
virtual device lose their edge, reproducing the paper's observation
that short queries run about even with RapidFlow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetExceeded


@dataclass(frozen=True)
class CostModel:
    """Conversion constants between abstract work and model seconds."""

    cpu_op_seconds: float = 2.0e-8  # ~50M primitive graph ops/s, one core
    gpu_clock_hz: float = 1.4e9

    def cpu_seconds(self, ops: float) -> float:
        return ops * self.cpu_op_seconds

    def gpu_seconds(self, cycles: float) -> float:
        return cycles / self.gpu_clock_hz


DEFAULT_COST_MODEL = CostModel()

#: equal-work translation: one CPU primitive op corresponds to roughly
#: this many simulated device cycles. Measured on workloads both
#: engine families solve, GAMMA's charge per candidate probe lands at
#: 5-36 cycles per baseline op (coalesced reads + ALU rounds + table
#: probes); 60 sits above that band, so a timeout grants GAMMA at
#: least the same abstract amount of *search work* as the baselines
#: get, and its wins come from parallel makespan, not allowance.
CYCLES_PER_CPU_OP = 60.0


@dataclass
class CostCounter:
    """Accumulates a CPU engine's primitive-operation count.

    ``budget`` (in ops) is the reproduction's analogue of the paper's
    30-minute wall-clock threshold: exceeding it raises
    :class:`BudgetExceeded`, and the harness records the query as
    unsolved.
    """

    ops: float = 0.0
    budget: float | None = None
    # per-category breakdown for analysis benches
    categories: dict[str, float] = field(default_factory=dict)

    def charge(self, n_ops: float, category: str = "search") -> None:
        self.ops += n_ops
        if category:
            self.categories[category] = self.categories.get(category, 0.0) + n_ops
        if self.budget is not None and self.ops > self.budget:
            raise BudgetExceeded(self.ops, self.budget)

    def seconds(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        return model.cpu_seconds(self.ops)

    def reset(self) -> None:
        self.ops = 0.0
        self.categories.clear()
