"""Plain-text table/series rendering for the benchmark outputs.

Every benchmark writes a text artifact under ``benchmarks/out/`` and
prints the same content, so the tables/figures the paper reports can
be regenerated and diffed run-to-run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

ARTIFACT_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "out"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Monospace table with a title rule."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 3 * len(widths))]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[object]],
) -> str:
    """One row per x value, one column per named series (figure data)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row = [x] + [series[name][i] for name in series]
        rows.append(row)
    return render_table(title, headers, rows)


def save_artifact(name: str, text: str) -> Path:
    """Write (and echo) a benchmark artifact."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n{text}\n[artifact: {path}]")
    return path


def fmt_seconds(s: float) -> str:
    """Human-scaled model seconds (the tables span µs..s)."""
    if s == float("inf"):
        return "timeout"
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    if s >= 1e-6:
        return f"{s * 1e6:.1f}us"
    return f"{s * 1e9:.0f}ns"
