"""Graphflow baseline (Kankanamge et al., SIGMOD'17 demo).

Index-free continuous matching: each updated edge is mapped onto every
compatible query edge and partial matches are extended by repeatedly
joining the remaining query vertices against adjacency lists — exactly
the shared backtracking core, with only the NLF check as a filter.
"""

from __future__ import annotations

from repro.baselines.base import CSMEngine


class Graphflow(CSMEngine):
    """One-off extension per update; no maintained index."""

    name = "GF"

    def _build_index(self) -> None:
        # Graphflow maintains no candidate index; precompute the query
        # NLF signatures used as the per-vertex filter
        self._qnlf = {u: self.query.nlf(u) for u in self.query.vertices()}
        self._enable_nlf_index()

    def _candidate_ok(self, qv: int, dv: int) -> bool:
        self.cost.charge(1, "filter")
        g = self.graph
        if g.degree(dv) < self.query.degree(qv):
            return False
        counts = self._nlf_counts
        if counts is not None:
            return bool((counts[dv] >= self._qreq[qv]).all())
        gn = g.nlf(dv)
        return all(gn.get(lbl, 0) >= cnt for lbl, cnt in self._qnlf[qv].items())
