"""TurboFlux baseline (Kim et al., SIGMOD'18).

TurboFlux maintains a *data-centric graph* (DCG): for a spanning tree
of the query rooted at a selective vertex, every data vertex carries a
per-query-vertex state that says whether the subtree rooted there can
be weakly embedded below it. Edge updates flip these states through
counter-based transitions, and incremental matches are enumerated with
the states as pruning filters (non-tree query edges verified during
enumeration).

This reimplementation keeps exactly that structure: bottom-up subtree
states ``S[u]``, per-tree-edge neighbor counters, and propagation
queues on insert/delete. The per-update index maintenance cost — which
the paper highlights as the reason CSM engines fall behind on batches —
is charged to the cost counter per counter transition.
"""

from __future__ import annotations

from collections import deque

from repro.baselines.base import CSMEngine


class TurboFlux(CSMEngine):
    """DCG spanning-tree state index + anchored enumeration."""

    name = "TF"

    def _build_index(self) -> None:
        q = self.query
        self._root = max(q.vertices(), key=q.degree)
        # BFS spanning tree
        self._parent: dict[int, int | None] = {self._root: None}
        self._children: dict[int, list[int]] = {u: [] for u in q.vertices()}
        order = [self._root]
        dq = deque([self._root])
        while dq:
            u = dq.popleft()
            for w in q.neighbors(u):
                if w not in self._parent:
                    self._parent[w] = u
                    self._children[u].append(w)
                    order.append(w)
                    dq.append(w)
        self._bfs_order = order

        # S[u]: data vertices whose subtree state for u is ON
        # cnt[c][v]: #neighbors w of v with w in S[c] over the correctly
        # labeled tree edge (parent(c), c)
        g = self.graph
        self._S: dict[int, set[int]] = {}
        self._cnt: dict[int, dict[int, int]] = {c: {} for c in q.vertices() if c != self._root}
        for u in reversed(order):
            self._S[u] = set()
            for v in g.vertices():
                if self._subtree_ok(u, v):
                    self._S[u].add(v)
                self.cost.charge(1, "index")

    def _subtree_ok(self, u: int, v: int) -> bool:
        q, g = self.query, self.graph
        if g.vertex_label(v) != q.vertex_label(u):
            return False
        # every child counter must be materialized even when an earlier
        # one is zero: incremental maintenance later adjusts them with
        # get(v, 0) ± 1, which silently undercounts if a counter was
        # skipped by short-circuiting here
        ok = True
        for c in self._children[u]:
            cnt = self._count_children(u, c, v)
            self._cnt[c][v] = cnt
            if cnt == 0:
                ok = False
        return ok

    def _count_children(self, u: int, c: int, v: int) -> int:
        q, g = self.query, self.graph
        want = q.edge_label(u, c)
        total = 0
        sc = self._S[c]
        for w, elbl in g.neighbor_dict(v).items():
            self.cost.charge(1, "index")
            if elbl == want and w in sc:
                total += 1
        return total

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def _apply_edge_change(self, x: int, y: int, label: int, delta: int) -> None:
        """Adjust counters for data edge (x, y) appearing (+1) or
        disappearing (−1); propagate state flips toward the root."""
        flips: deque[tuple[int, int, bool]] = deque()  # (data v, query u, now_on)
        for c, p in self._parent.items():
            if p is None:
                continue
            if self.query.edge_label(p, c) != label:
                continue
            for a, b in ((x, y), (y, x)):
                # 'a' gains/loses neighbor 'b' w.r.t. tree edge (p, c)
                if self.graph.vertex_label(a) != self.query.vertex_label(p):
                    continue
                if b not in self._S[c]:
                    continue
                self.cost.charge(1, "index")
                cnt = self._cnt[c].get(a, 0) + delta
                self._cnt[c][a] = cnt
                if (a in self._S[p]) != self._state_value(p, a):
                    flips.append((a, p))
        self._propagate(flips)

    def _state_value(self, u: int, v: int) -> bool:
        if self.graph.vertex_label(v) != self.query.vertex_label(u):
            return False
        return all(self._cnt[c].get(v, 0) > 0 for c in self._children[u])

    def _propagate(self, flips: deque) -> None:
        """Counter cascade: a flipped (v, u) adjusts parents' counters.

        State is recomputed at dequeue time — a later counter change in
        the same cascade may have superseded the queued transition.
        """
        while flips:
            v, u = flips.popleft()
            now_on = self._state_value(u, v)
            if now_on == (v in self._S[u]):
                continue
            if now_on:
                self._S[u].add(v)
            else:
                self._S[u].discard(v)
            p = self._parent[u]
            if p is None:
                continue
            want = self.query.edge_label(p, u)
            plabel = self.query.vertex_label(p)
            for w, elbl in self.graph.neighbor_dict(v).items():
                self.cost.charge(1, "index")
                if elbl != want or self.graph.vertex_label(w) != plabel:
                    continue
                cnt = self._cnt[u].get(w, 0) + (1 if now_on else -1)
                self._cnt[u][w] = cnt
                if (w in self._S[p]) != self._state_value(p, w):
                    flips.append((w, p))

    def _index_insert(self, u: int, v: int, label: int) -> None:
        self._apply_edge_change(u, v, label, +1)

    def _index_delete(self, u: int, v: int, label: int) -> None:
        self._apply_edge_change(u, v, label, -1)

    # ------------------------------------------------------------------
    def _candidate_ok(self, qv: int, dv: int) -> bool:
        self.cost.charge(1, "filter")
        return dv in self._S[qv]
