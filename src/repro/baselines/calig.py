"""CaLiG baseline (Yang et al., PACMMOD'23).

CaLiG maintains a *candidate lighting* index: ``lit[u][v]`` holds iff
label(v)=label(u) and, for **every** query neighbor u' of u, v has a
neighbor lit for u' — a full arc-consistency fixpoint over the query's
adjacency (stronger than tree- or DAG-shaped weak embeddings, which is
how CaLiG minimizes backtracking). Updates switch candidates on/off
with counter-based cascades.

CaLiG is defined for vertex-labeled graphs; on edge-labeled inputs the
published system *vertexifies*: every labeled edge becomes an extra
vertex carrying the edge label, wired to both endpoints. The paper
observes this transformation "alters the graph structure and expands
the search space" and blames it for CaLiG's collapse on NF/LS — this
reimplementation performs the same transformation, so the collapse
reproduces mechanically: the index and the enumeration both run on a
graph with |V| + |E| vertices.
"""

from __future__ import annotations

from collections import deque

from repro.baselines.base import CSMEngine, Match
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.updates import OpKind, UpdateOp
from repro.errors import MatchingError

_EDGE_LABEL_BASE = 1 << 20  # edge-vertex labels live far above vertex labels


def _needs_vertexify(query: LabeledGraph, graph: LabeledGraph) -> bool:
    labels = query.edge_label_alphabet() | graph.edge_label_alphabet()
    return len(labels) > 1


def _vertexify(g: LabeledGraph) -> tuple[LabeledGraph, dict[tuple[int, int], int]]:
    """Edge-labeled graph -> vertex-labeled graph with edge-vertices.

    Returns the transformed graph and the map canonical edge -> edge-
    vertex id.
    """
    out = LabeledGraph(list(g.vertex_labels))
    edge_vertex: dict[tuple[int, int], int] = {}
    for u, v, lbl in g.labeled_edges():
        z = out.add_vertex(_EDGE_LABEL_BASE + lbl)
        out.add_edge(u, z)
        out.add_edge(z, v)
        edge_vertex[(u, v)] = z
    return out, edge_vertex


class CaLiG(CSMEngine):
    """Candidate lighting with optional edge-label vertexification."""

    name = "CL"

    def __init__(self, query, graph, cost=None):
        self._original_query = query
        self._vertexified = _needs_vertexify(query, graph)
        if self._vertexified:
            tq, _ = _vertexify(query)
            tg, edge_vertex = _vertexify(graph)
            self._edge_vertex = edge_vertex
            self._n_original_query = query.n_vertices
            super().__init__(tq, tg, cost)
        else:
            self._edge_vertex = {}
            self._n_original_query = query.n_vertices
            super().__init__(query, graph, cost)

    # ------------------------------------------------------------------
    # lighting index: arc-consistency fixpoint + incremental switching
    # ------------------------------------------------------------------
    def _build_index(self) -> None:
        q, g = self.query, self.graph
        self._lit: dict[int, set[int]] = {u: set() for u in q.vertices()}
        self._cnt: dict[tuple[int, int], dict[int, int]] = {}
        for u in q.vertices():
            for u2 in q.neighbors(u):
                self._cnt[(u, u2)] = {}
        # seed: label equality
        by_label: dict[int, list[int]] = {}
        for v in g.vertices():
            by_label.setdefault(g.vertex_label(v), []).append(v)
        for u in q.vertices():
            self._lit[u] = set(by_label.get(q.vertex_label(u), []))
            self.cost.charge(g.n_vertices, "index")
        # fixpoint: peel vertices lacking support for some query neighbor
        queue: deque[tuple[int, int]] = deque()
        for u in q.vertices():
            for v in list(self._lit[u]):
                if not self._supported(u, v, initial=True):
                    queue.append((u, v))
        while queue:
            u, v = queue.popleft()
            if v not in self._lit[u]:
                continue
            if self._supported(u, v):
                continue
            self._lit[u].discard(v)
            self._cascade_off(u, v, queue)

    def _supported(self, u: int, v: int, initial: bool = False) -> bool:
        """Does v currently have >=1 lit neighbor for every u'?

        The initial pass materializes *every* neighbor counter (no
        short-circuit): later incremental adjustments use get(v, 0) ± 1
        and would undercount any counter skipped here.
        """
        q = self.query
        ok = True
        for u2 in q.neighbors(u):
            if initial:
                cnt = self._count_support(u, u2, v)
                self._cnt[(u, u2)][v] = cnt
            else:
                cnt = self._cnt[(u, u2)].get(v, 0)
            if cnt == 0:
                if not initial:
                    return False
                ok = False
        return ok

    def _count_support(self, u: int, u2: int, v: int) -> int:
        q, g = self.query, self.graph
        want = q.edge_label(u, u2)
        lit2 = self._lit[u2]
        total = 0
        for w, elbl in g.neighbor_dict(v).items():
            self.cost.charge(1, "index")
            if elbl == want and w in lit2:
                total += 1
        return total

    def _cascade_off(self, u: int, v: int, queue: deque) -> None:
        """v went dark for u: decrement neighbors' support counters."""
        q, g = self.query, self.graph
        for u2 in q.neighbors(u):
            want = q.edge_label(u, u2)
            l2 = q.vertex_label(u2)
            for w, elbl in g.neighbor_dict(v).items():
                self.cost.charge(1, "index")
                if elbl != want or g.vertex_label(w) != l2:
                    continue
                slot = self._cnt[(u2, u)]
                slot[w] = slot.get(w, 0) - 1
                if slot[w] == 0 and w in self._lit[u2]:
                    queue.append((u2, w))

    def _cascade_on(self, u: int, v: int, queue: deque) -> None:
        """v lit up for u: increment neighbors' counters, maybe relight."""
        q, g = self.query, self.graph
        for u2 in q.neighbors(u):
            want = q.edge_label(u, u2)
            l2 = q.vertex_label(u2)
            for w, elbl in g.neighbor_dict(v).items():
                self.cost.charge(1, "index")
                if elbl != want or g.vertex_label(w) != l2:
                    continue
                slot = self._cnt[(u2, u)]
                slot[w] = slot.get(w, 0) + 1
                if w not in self._lit[u2]:
                    queue.append((u2, w))

    def _relight_pass(self, queue: deque) -> None:
        """Process on/off candidates until the fixpoint is restored."""
        while queue:
            u, v = queue.popleft()
            lit_now = v in self._lit[u]
            should = (
                self.graph.vertex_label(v) == self.query.vertex_label(u)
                and self._supported(u, v)
            )
            if should and not lit_now:
                self._lit[u].add(v)
                self._cascade_on(u, v, queue)
            elif not should and lit_now:
                self._lit[u].discard(v)
                self._cascade_off(u, v, queue)

    # ------------------------------------------------------------------
    # transformed-graph counter seeding for structural changes
    # ------------------------------------------------------------------
    def _seed_new_vertex(self, z: int) -> None:
        """A fresh data vertex: initialize counters and tentatively
        light it for every label-compatible query vertex."""
        q = self.query
        queue: deque[tuple[int, int]] = deque()
        for u in q.vertices():
            if q.vertex_label(u) == self.graph.vertex_label(z):
                queue.append((u, z))
        self._relight_pass(queue)

    _REGION_CAP = 4096  # beyond this, rebuild the fixpoint from scratch

    def _index_insert(self, u: int, v: int, label: int) -> None:
        """Data edge appeared: bump support counters, then restore the
        greatest fixpoint.

        Lighting is *not* monotone under insertion — a new edge can
        close a cycle of mutually supporting candidates that no
        "light-if-already-supported" pass will ever reach. The correct
        move (as in the published turning-on procedure) is optimistic:
        tentatively light the whole dark region reachable from the new
        edge through label-compatible pairs, then peel unsupported
        pairs monotonically. When the region explodes (the single-
        vertex-label vertexified graphs, i.e. NF/LS) we rebuild the
        index outright and charge the full cost — the collapse the
        paper reports for CaLiG on edge-labeled datasets.
        """
        q, g = self.query, self.graph
        seeds: list[tuple[int, int]] = []
        for qu in q.vertices():
            for qu2 in q.neighbors(qu):
                if q.edge_label(qu, qu2) != label:
                    continue
                for a, b in ((u, v), (v, u)):
                    if g.vertex_label(a) != q.vertex_label(qu):
                        continue
                    if b in self._lit[qu2]:
                        self.cost.charge(1, "index")
                        slot = self._cnt[(qu, qu2)]
                        slot[a] = slot.get(a, 0) + 1
                    if a not in self._lit[qu]:
                        seeds.append((qu, a))
        self._optimistic_relight(seeds)

    def _optimistic_relight(self, seeds: list[tuple[int, int]]) -> None:
        q, g = self.query, self.graph
        region: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        stack = [s for s in seeds if s[1] not in self._lit[s[0]]]
        while stack:
            pair = stack.pop()
            if pair in seen:
                continue
            seen.add(pair)
            region.append(pair)
            if len(region) > self._REGION_CAP:
                # full rebuild: reset and recompute the fixpoint
                self.cost.charge(g.n_vertices * q.n_vertices, "index")
                self._build_index()
                return
            qu, dv = pair
            self.cost.charge(1, "index")
            for qu2 in q.neighbors(qu):
                want = q.edge_label(qu, qu2)
                l2 = q.vertex_label(qu2)
                for w, elbl in g.neighbor_dict(dv).items():
                    self.cost.charge(1, "index")
                    if (
                        elbl == want
                        and g.vertex_label(w) == l2
                        and w not in self._lit[qu2]
                        and (qu2, w) not in seen
                    ):
                        stack.append((qu2, w))
        # tentatively light the region (with counter increments) ...
        for qu, dv in region:
            self._lit[qu].add(dv)
        peel: deque[tuple[int, int]] = deque(region)
        for qu, dv in region:
            for qu2 in q.neighbors(qu):
                want = q.edge_label(qu, qu2)
                l2 = q.vertex_label(qu2)
                for w, elbl in g.neighbor_dict(dv).items():
                    self.cost.charge(1, "index")
                    if elbl == want and g.vertex_label(w) == l2:
                        slot = self._cnt[(qu2, qu)]
                        slot[w] = slot.get(w, 0) + 1
        # ... then peel monotonically back down to the fixpoint
        while peel:
            qu, dv = peel.popleft()
            if dv in self._lit[qu] and not self._supported(qu, dv):
                self._lit[qu].discard(dv)
                self._cascade_off(qu, dv, peel)

    def _index_delete(self, u: int, v: int, label: int) -> None:
        q, g = self.query, self.graph
        queue: deque[tuple[int, int]] = deque()
        for qu in q.vertices():
            for qu2 in q.neighbors(qu):
                if q.edge_label(qu, qu2) != label:
                    continue
                for a, b in ((u, v), (v, u)):
                    if g.vertex_label(a) != q.vertex_label(qu):
                        continue
                    if b in self._lit[qu2]:
                        self.cost.charge(1, "index")
                        slot = self._cnt[(qu, qu2)]
                        slot[a] = slot.get(a, 0) - 1
                        queue.append((qu, a))
        self._relight_pass(queue)

    # ------------------------------------------------------------------
    def _candidate_ok(self, qv: int, dv: int) -> bool:
        self.cost.charge(1, "filter")
        return dv in self._lit[qv]

    # ------------------------------------------------------------------
    # update handling with vertexification
    # ------------------------------------------------------------------
    def process_update(self, op: UpdateOp) -> tuple[set[Match], set[Match]]:
        if not self._vertexified:
            return super().process_update(op)
        x, y = op.edge
        if op.kind is OpKind.INSERT:
            if (x, y) in self._edge_vertex:
                raise MatchingError(f"insert of existing edge ({x}, {y})")
            z = self.graph.add_vertex(_EDGE_LABEL_BASE + op.label)
            self._edge_vertex[(x, y)] = z
            self.graph.add_edge(x, z)
            self._seed_new_vertex(z)
            self._index_insert(x, z, 0)
            self.graph.add_edge(z, y)
            self._index_insert(z, y, 0)
            pos = self._enumerate_with_edge(x, z)
            return {m[: self._n_original_query] for m in pos}, set()
        z = self._edge_vertex.pop((x, y), None)
        if z is None:
            raise MatchingError(f"delete of missing edge ({x}, {y})")
        neg = self._enumerate_with_edge(x, z)
        self.graph.remove_edge(x, z)
        self._index_delete(x, z, 0)
        self.graph.remove_edge(z, y)
        self._index_delete(z, y, 0)
        # the edge-vertex stays as an isolated dark vertex (id stability)
        queue: deque = deque(
            (u, z) for u in self.query.vertices() if z in self._lit[u]
        )
        self._relight_pass(queue)
        return set(), {m[: self._n_original_query] for m in neg}
