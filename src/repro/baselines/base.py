"""Shared machinery for the CPU CSM baselines.

A :class:`CSMEngine` processes one update at a time (the continuous
semantics the paper contrasts with BDSM): each insert yields the
positive matches it creates, each delete the negatives it destroys,
against the *current* graph state. ``process_batch`` replays a batch
sequentially and nets the per-op deltas, which telescopes to exactly
the batch-dynamic ``ΔM`` — the property GAMMA exploits and the tests
verify.

Subclasses provide index construction/maintenance and an enumeration
primitive anchored at the updated edge. The default enumeration is a
backtracking extension loop shared by most engines; each baseline
customizes candidate filtering (its index) and ordering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Iterable, Optional

from repro.bench.cost import CostCounter
from repro.errors import MatchingError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.updates import OpKind, UpdateBatch, UpdateOp
from repro.matching.matching_order import matching_order_for_pair

Match = tuple[int, ...]


class CSMEngine(ABC):
    """Base class: continuous subgraph matching over single-edge updates."""

    name = "CSM"

    def __init__(
        self,
        query: LabeledGraph,
        graph: LabeledGraph,
        cost: Optional[CostCounter] = None,
    ) -> None:
        if query.n_vertices < 2:
            raise MatchingError("query needs at least one edge")
        self.query = query
        self.graph = graph.copy()
        self.cost = cost if cost is not None else CostCounter()
        self._orders: dict[tuple[int, int], list[int]] = {}
        # optional columnar NLF index (see _enable_nlf_index); None means
        # engines fall back to per-probe Counter rebuilds
        self._nlf_counts = None
        self._nlf_alpha_index: dict[int, int] | None = None
        self._qreq: dict[int, "object"] | None = None
        self._build_index()

    # ------------------------------------------------------------------
    # framework
    # ------------------------------------------------------------------
    @abstractmethod
    def _build_index(self) -> None:
        """Construct the engine's auxiliary structures."""

    def _index_insert(self, u: int, v: int, label: int) -> None:
        """Maintain the index after an edge insertion (the edge is
        already in ``self.graph``). Default: none."""

    def _index_delete(self, u: int, v: int, label: int) -> None:
        """Maintain the index after an edge deletion (the edge is
        already gone from ``self.graph``). Default: none."""

    def _enable_nlf_index(self) -> None:
        """Build a dense ``(n_vertices, |labels|)`` neighbor-label count
        matrix from the authoritative CSR snapshot, replacing the O(deg)
        Counter rebuild :meth:`LabeledGraph.nlf` performs on every
        candidate probe. Maintained incrementally per edge update; the
        filter semantics are unchanged (labels outside the query's
        alphabet have requirement zero, so they can never fail a check).
        """
        import numpy as np

        from repro.graph.csr import CSRGraph

        g, q = self.graph, self.query
        alphabet = sorted(
            {g.vertex_label(v) for v in g.vertices()}
            | {q.vertex_label(u) for u in q.vertices()}
        )
        self._nlf_alpha_index = {lbl: i for i, lbl in enumerate(alphabet)}
        n_labels = len(alphabet)
        csr = CSRGraph.from_graph(g)
        n = g.n_vertices
        alpha_arr = np.asarray(alphabet, dtype=np.int64)
        nbr_lbl = np.searchsorted(alpha_arr, np.asarray(csr.vertex_labels)[csr.neighbors])
        row = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.offsets))
        self._nlf_counts = np.bincount(
            row * n_labels + nbr_lbl, minlength=n * n_labels
        ).reshape(n, n_labels)
        self._qreq = {
            u: np.asarray([q.nlf(u).get(lbl, 0) for lbl in alphabet], dtype=np.int64)
            for u in q.vertices()
        }

    def _nlf_shift(self, u: int, v: int, delta: int) -> None:
        """Incrementally maintain the NLF count matrix after an edge
        (u, v) was inserted (``delta=+1``) or deleted (``delta=-1``)."""
        counts = self._nlf_counts
        if counts is None:
            return
        idx = self._nlf_alpha_index
        counts[u, idx[self.graph.vertex_label(v)]] += delta
        counts[v, idx[self.graph.vertex_label(u)]] += delta

    def process_update(self, op: UpdateOp) -> tuple[set[Match], set[Match]]:
        """Apply one update; returns ``(positives, negatives)`` created/
        destroyed by it."""
        u, v = op.edge
        if op.kind is OpKind.INSERT:
            if self.graph.has_edge(u, v):
                raise MatchingError(f"insert of existing edge ({u}, {v})")
            self.graph.add_edge(u, v, op.label)
            self._nlf_shift(u, v, +1)
            self._index_insert(u, v, op.label)
            pos = self._enumerate_with_edge(u, v)
            return pos, set()
        if not self.graph.has_edge(u, v):
            raise MatchingError(f"delete of missing edge ({u}, {v})")
        neg = self._enumerate_with_edge(u, v)
        label = self.graph.edge_label(u, v)
        self.graph.remove_edge(u, v)
        self._nlf_shift(u, v, -1)
        self._index_delete(u, v, label)
        return set(), neg

    def process_batch(self, batch: UpdateBatch) -> tuple[set[Match], set[Match]]:
        """Replay a batch one op at a time (the CSM way) and net the
        deltas into the batch-dynamic ``ΔM``."""
        net: Counter = Counter()
        for op in batch:
            pos, neg = self.process_update(op)
            for m in pos:
                net[m] += 1
            for m in neg:
                net[m] -= 1
        positives = {m for m, c in net.items() if c > 0}
        negatives = {m for m, c in net.items() if c < 0}
        return positives, negatives

    # ------------------------------------------------------------------
    # anchored enumeration (shared backtracking core)
    # ------------------------------------------------------------------
    def _candidate_ok(self, qv: int, dv: int) -> bool:
        """Index filter hook: may this data vertex match this query
        vertex? Subclasses override with their index."""
        return True

    def _order_for(self, pair: tuple[int, int]) -> list[int]:
        order = self._orders.get(pair)
        if order is None:
            order = matching_order_for_pair(self.query, pair)
            self._orders[pair] = order
        return order

    def _mapped_pairs(self, x: int, y: int) -> Iterable[tuple[int, int]]:
        """Ordered query edges the data edge (x, y) can map onto."""
        q, g = self.query, self.graph
        lx, ly = g.vertex_label(x), g.vertex_label(y)
        elabel = g.edge_label(x, y)
        for a, b in q.edges():
            if q.edge_label(a, b) != elabel:
                continue
            if q.vertex_label(a) == lx and q.vertex_label(b) == ly:
                yield (a, b)
            if q.vertex_label(a) == ly and q.vertex_label(b) == lx:
                yield (b, a)

    def _enumerate_with_edge(self, x: int, y: int) -> set[Match]:
        """All current matches using data edge (x, y) as a query-edge
        image — the per-update incremental matches."""
        out: set[Match] = set()
        for a, b in self._mapped_pairs(x, y):
            self.cost.charge(1, "mapping")
            if not (self._candidate_ok(a, x) and self._candidate_ok(b, y)):
                continue
            order = self._order_for((a, b))
            self._extend(order, {a: x, b: y}, 2, out)
        return out

    def _extend(
        self,
        order: list[int],
        assign: dict[int, int],
        level: int,
        out: set[Match],
    ) -> None:
        q, g = self.query, self.graph
        n = q.n_vertices
        if level == n:
            out.add(tuple(assign[u] for u in range(n)))
            self.cost.charge(n, "emit")
            return
        qv = order[level]
        matched = [w for w in q.neighbors(qv) if w in assign]
        anchor = min(matched, key=lambda w: g.degree(assign[w]))
        base = g.neighbors(assign[anchor])
        self.cost.charge(len(base), "scan")
        used = set(assign.values())
        want = q.vertex_label(qv)
        for c in base:
            if g.vertex_label(c) != want or c in used:
                continue
            if not self._candidate_ok(qv, c):
                continue
            ok = True
            for w in matched:
                dv = assign[w]
                elbl = g.neighbor_dict(dv).get(c)
                self.cost.charge(1, "probe")
                if elbl is None or elbl != q.edge_label(qv, w):
                    ok = False
                    break
            if not ok:
                continue
            assign[qv] = c
            self._extend(order, assign, level + 1, out)
            del assign[qv]
