"""CPU continuous-subgraph-matching baselines (paper §VI-A).

Reimplementations of the four systems GAMMA is compared against, each
built around its published mechanism:

* :class:`TurboFlux` — data-centric graph with spanning-tree vertex
  states maintained incrementally (Kim et al., SIGMOD'18);
* :class:`SymBi` — query DAG + dynamic candidate space with
  ancestor/descendant weak embeddings (Min et al., PVLDB'21);
* :class:`RapidFlow` — query reduction (leaf elimination) and dual
  matching over automorphism orbits (Sun et al., PVLDB'22);
* :class:`CaLiG` — candidate-lighting index with edge-label
  vertexification for edge-labeled graphs (Yang et al., SIGMOD'23);

plus two reference engines: :class:`Graphflow` (index-free edge-at-a-
time extension) and :class:`IncIsoMat` (locality-bounded re-matching).

All process updates one at a time (CSM semantics) and are validated
against the oracle; costs accumulate in a shared
:class:`~repro.bench.cost.CostCounter`.
"""

from repro.baselines.base import CSMEngine
from repro.baselines.graphflow import Graphflow
from repro.baselines.incisomat import IncIsoMat
from repro.baselines.turboflux import TurboFlux
from repro.baselines.symbi import SymBi
from repro.baselines.rapidflow import RapidFlow
from repro.baselines.calig import CaLiG

BASELINES = {
    "TF": TurboFlux,
    "SYM": SymBi,
    "RF": RapidFlow,
    "CL": CaLiG,
    "GF": Graphflow,
    "IIM": IncIsoMat,
}

__all__ = [
    "CSMEngine",
    "Graphflow",
    "IncIsoMat",
    "TurboFlux",
    "SymBi",
    "RapidFlow",
    "CaLiG",
    "BASELINES",
]
