"""IncIsoMat baseline (Fan et al., TODS'13).

Locality-bounded re-matching: an update can only affect matches within
``diameter(Q)`` hops of the updated edge, so the engine extracts that
neighborhood and re-enumerates matches through the edge inside it. The
paper notes it "enumerates unnecessary matches, leading to substantial
computational overhead" — reproduced here by the subgraph-extraction
cost charged on every update.
"""

from __future__ import annotations

from collections import deque

from repro.baselines.base import CSMEngine


def _query_diameter(query) -> int:
    """Eccentricity bound via BFS from every vertex (queries are tiny)."""
    best = 0
    for s in query.vertices():
        dist = {s: 0}
        dq = deque([s])
        while dq:
            u = dq.popleft()
            for w in query.neighbors(u):
                if w not in dist:
                    dist[w] = dist[u] + 1
                    dq.append(w)
        if dist:
            best = max(best, max(dist.values()))
    return best


class IncIsoMat(CSMEngine):
    """Re-match inside the update's d(Q)-hop neighborhood."""

    name = "IIM"

    def _build_index(self) -> None:
        self._radius = max(1, _query_diameter(self.query))

    def _local_region(self, x: int, y: int) -> set[int]:
        """Vertices within d(Q) hops of either endpoint; the extraction
        cost (visiting every adjacency in the ball) is charged."""
        region = {x, y}
        frontier = [x, y]
        for _ in range(self._radius):
            nxt = []
            for u in frontier:
                nbrs = self.graph.neighbors(u)
                self.cost.charge(len(nbrs), "extract")
                for w in nbrs:
                    if w not in region:
                        region.add(w)
                        nxt.append(w)
            frontier = nxt
        return region

    def _enumerate_with_edge(self, x: int, y: int):
        # pay for the extraction, then run the anchored enumeration
        # restricted to the extracted region
        self._region = self._local_region(x, y)
        try:
            return super()._enumerate_with_edge(x, y)
        finally:
            self._region = None

    def _candidate_ok(self, qv: int, dv: int) -> bool:
        self.cost.charge(1, "filter")
        return self._region is None or dv in self._region
