"""SymBi baseline (Min et al., PVLDB'21).

SymBi turns the query into a DAG (BFS order from a selective root; all
edges directed low→high) and maintains a *dynamic candidate space*
(DCS) with two weak-embedding flags per (data vertex, query vertex):

* ``D1[v][u]`` — v can weakly embed u's *ancestor side*: label match
  and, for every DAG parent p of u, some neighbor w with ``D1[w][p]``;
* ``D2[v][u]`` — the *descendant side on top of D1*: ``D1[v][u]`` and,
  for every DAG child c of u, some neighbor w with ``D2[w][c]``.

Both are maintained incrementally with per-DAG-edge counters and
bidirectional propagation on every update (the "symmetric" part of the
name). ``D2`` is the enumeration filter; because it subsumes both
directions it prunes harder than a one-sided tree index, at the price
of heavier per-update maintenance — visible in the cost counter.
"""

from __future__ import annotations

from collections import deque

from repro.baselines.base import CSMEngine


class SymBi(CSMEngine):
    """DAG + DCS (D1/D2) with counter-based incremental maintenance."""

    name = "SYM"

    def _build_index(self) -> None:
        q = self.query
        root = max(q.vertices(), key=q.degree)
        # BFS ranks give the DAG orientation (ties by vertex id)
        rank = {root: (0, root)}
        dq = deque([root])
        level = {root: 0}
        while dq:
            u = dq.popleft()
            for w in q.neighbors(u):
                if w not in level:
                    level[w] = level[u] + 1
                    rank[w] = (level[w], w)
                    dq.append(w)
        for u in q.vertices():  # disconnected query vertices (defensive)
            rank.setdefault(u, (q.n_vertices, u))
        self._rank = rank
        self._parents: dict[int, list[int]] = {u: [] for u in q.vertices()}
        self._children: dict[int, list[int]] = {u: [] for u in q.vertices()}
        for a, b in q.edges():
            lo, hi = (a, b) if rank[a] < rank[b] else (b, a)
            self._parents[hi].append(lo)
            self._children[lo].append(hi)
        # topological order = sort by rank
        self._topo = sorted(q.vertices(), key=lambda u: rank[u])

        g = self.graph
        self._d1: dict[int, set[int]] = {u: set() for u in q.vertices()}
        self._d2: dict[int, set[int]] = {u: set() for u in q.vertices()}
        # cnt1[u][v] per parent edge support; keyed (u, p) and (u, c)
        self._cnt1: dict[tuple[int, int], dict[int, int]] = {}
        self._cnt2: dict[tuple[int, int], dict[int, int]] = {}
        for u in q.vertices():
            for p in self._parents[u]:
                self._cnt1[(u, p)] = {}
            for c in self._children[u]:
                self._cnt2[(u, c)] = {}

        # initial D1 top-down
        for u in self._topo:
            for v in g.vertices():
                self.cost.charge(1, "index")
                if self._d1_value(u, v):
                    self._d1[u].add(v)
        # initial D2 bottom-up
        for u in reversed(self._topo):
            for v in g.vertices():
                self.cost.charge(1, "index")
                if self._d2_value(u, v):
                    self._d2[u].add(v)

    # ------------------------------------------------------------------
    def _d1_value(self, u: int, v: int) -> bool:
        q, g = self.query, self.graph
        if g.vertex_label(v) != q.vertex_label(u):
            return False
        # materialize every counter (no short-circuit): incremental
        # maintenance adjusts them with get(v, 0) ± 1 and would silently
        # undercount any counter skipped here
        ok = True
        for p in self._parents[u]:
            cnt = self._support(v, p, self._d1, q.edge_label(u, p))
            self._cnt1[(u, p)][v] = cnt
            if cnt == 0:
                ok = False
        return ok

    def _d2_value(self, u: int, v: int) -> bool:
        q, g = self.query, self.graph
        if g.vertex_label(v) != q.vertex_label(u):
            return False
        ok = v in self._d1[u]
        for c in self._children[u]:
            cnt = self._support(v, c, self._d2, q.edge_label(u, c))
            self._cnt2[(u, c)][v] = cnt
            if cnt == 0:
                ok = False
        return ok

    def _support(self, v: int, u2: int, table: dict[int, set[int]], want: int) -> int:
        total = 0
        members = table[u2]
        for w, elbl in self.graph.neighbor_dict(v).items():
            self.cost.charge(1, "index")
            if elbl == want and w in members:
                total += 1
        return total

    # ------------------------------------------------------------------
    # incremental maintenance (both directions)
    # ------------------------------------------------------------------
    def _adjust(self, x: int, y: int, label: int, delta: int) -> None:
        q, g = self.query, self.graph
        d1_flips: deque = deque()
        d2_flips: deque = deque()
        # counter updates induced directly by the edge (x, y)
        for u in q.vertices():
            for p in self._parents[u]:
                if q.edge_label(u, p) != label:
                    continue
                for a, b in ((x, y), (y, x)):
                    if g.vertex_label(a) != q.vertex_label(u):
                        continue
                    if b in self._d1[p]:
                        self.cost.charge(1, "index")
                        cnt = self._cnt1[(u, p)].get(a, 0) + delta
                        self._cnt1[(u, p)][a] = cnt
                        self._queue_d1(u, a, d1_flips)
            for c in self._children[u]:
                if q.edge_label(u, c) != label:
                    continue
                for a, b in ((x, y), (y, x)):
                    if g.vertex_label(a) != q.vertex_label(u):
                        continue
                    if b in self._d2[c]:
                        self.cost.charge(1, "index")
                        cnt = self._cnt2[(u, c)].get(a, 0) + delta
                        self._cnt2[(u, c)][a] = cnt
                        self._queue_d2(u, a, d2_flips)
        self._propagate_d1(d1_flips, d2_flips)
        self._propagate_d2(d2_flips)

    def _d1_now(self, u: int, v: int) -> bool:
        return self.graph.vertex_label(v) == self.query.vertex_label(u) and all(
            self._cnt1[(u, p)].get(v, 0) > 0 for p in self._parents[u]
        )

    def _d2_now(self, u: int, v: int) -> bool:
        return v in self._d1[u] and all(
            self._cnt2[(u, c)].get(v, 0) > 0 for c in self._children[u]
        )

    def _queue_d1(self, u: int, v: int, flips: deque) -> None:
        if (v in self._d1[u]) != self._d1_now(u, v):
            flips.append((u, v))

    def _queue_d2(self, u: int, v: int, flips: deque) -> None:
        if (v in self._d2[u]) != self._d2_now(u, v):
            flips.append((u, v))

    def _propagate_d1(self, flips: deque, d2_flips: deque) -> None:
        q, g = self.query, self.graph
        while flips:
            u, v = flips.popleft()
            # recompute at dequeue: a later counter change in this same
            # cascade may have superseded the queued transition
            now = self._d1_now(u, v)
            if now == (v in self._d1[u]):
                continue
            if now:
                self._d1[u].add(v)
            else:
                self._d1[u].discard(v)
            # D1 of v@u supports D1 of neighbors at u's children
            for c in self._children[u]:
                want = q.edge_label(u, c)
                clabel = q.vertex_label(c)
                for w, elbl in g.neighbor_dict(v).items():
                    self.cost.charge(1, "index")
                    if elbl != want or g.vertex_label(w) != clabel:
                        continue
                    cnt = self._cnt1[(c, u)].get(w, 0) + (1 if now else -1)
                    self._cnt1[(c, u)][w] = cnt
                    self._queue_d1(c, w, flips)
            # D1 feeds D2 at the same (u, v)
            self._queue_d2(u, v, d2_flips)

    def _propagate_d2(self, flips: deque) -> None:
        q, g = self.query, self.graph
        while flips:
            u, v = flips.popleft()
            now = self._d2_now(u, v)
            if now == (v in self._d2[u]):
                continue
            if now:
                self._d2[u].add(v)
            else:
                self._d2[u].discard(v)
            # D2 of v@u supports D2 of neighbors at u's parents
            for p in self._parents[u]:
                want = q.edge_label(u, p)
                plabel = q.vertex_label(p)
                for w, elbl in g.neighbor_dict(v).items():
                    self.cost.charge(1, "index")
                    if elbl != want or g.vertex_label(w) != plabel:
                        continue
                    cnt = self._cnt2[(p, u)].get(w, 0) + (1 if now else -1)
                    self._cnt2[(p, u)][w] = cnt
                    self._queue_d2(p, w, flips)

    def _index_insert(self, u: int, v: int, label: int) -> None:
        self._adjust(u, v, label, +1)

    def _index_delete(self, u: int, v: int, label: int) -> None:
        self._adjust(u, v, label, -1)

    # ------------------------------------------------------------------
    def _candidate_ok(self, qv: int, dv: int) -> bool:
        self.cost.charge(1, "filter")
        return dv in self._d2[qv]
