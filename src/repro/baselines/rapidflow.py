"""RapidFlow baseline (Sun et al., PVLDB'22).

RapidFlow's two signature techniques, both reproduced:

* **Query reduction** — degree-1 query vertices (leaves) are stripped
  from the backtracking core; after a core match is found the leaves
  are re-attached by joining their parents' adjacency lists. Tree
  queries, whose enumeration is dominated by leaf fan-out, benefit the
  most (the paper's Table III shows RF strongest exactly there).
* **Dual matching** — *twin leaves* (leaves sharing parent, vertex
  label, and edge label) are interchangeable under query automorphisms;
  the engine searches one assignment per combination and emits the
  remaining permutations directly instead of re-searching them.

Both effects show up in the cost counter: the search pays for
combinations, while permuted emissions are charged at output cost only.
"""

from __future__ import annotations

from itertools import permutations

from repro.baselines.base import CSMEngine, Match


class RapidFlow(CSMEngine):
    """Query reduction + dual (twin-leaf) matching."""

    name = "RF"

    def _build_index(self) -> None:
        q = self.query
        self._qnlf = {u: q.nlf(u) for u in q.vertices()}
        self._enable_nlf_index()
        self._leaves = sorted(
            u for u in q.vertices() if q.degree(u) == 1 and q.n_vertices > 2
        )
        self._core = [u for u in q.vertices() if u not in set(self._leaves)]
        # twin groups: (parent, vertex label, edge label) -> leaf list
        groups: dict[tuple[int, int, int], list[int]] = {}
        for leaf in self._leaves:
            parent = q.neighbors(leaf)[0]
            key = (parent, q.vertex_label(leaf), q.edge_label(parent, leaf))
            groups.setdefault(key, []).append(leaf)
        self._leaf_groups = groups

    def _candidate_ok(self, qv: int, dv: int) -> bool:
        self.cost.charge(1, "filter")
        g = self.graph
        if g.degree(dv) < self.query.degree(qv):
            return False
        counts = self._nlf_counts
        if counts is not None:
            return bool((counts[dv] >= self._qreq[qv]).all())
        gn = g.nlf(dv)
        return all(gn.get(lbl, 0) >= cnt for lbl, cnt in self._qnlf[qv].items())

    # ------------------------------------------------------------------
    def _enumerate_with_edge(self, x: int, y: int) -> set[Match]:
        out: set[Match] = set()
        leaves = set(self._leaves)
        for a, b in self._mapped_pairs(x, y):
            self.cost.charge(1, "mapping")
            if not (self._candidate_ok(a, x) and self._candidate_ok(b, y)):
                continue
            if a in leaves or b in leaves or not self._leaves:
                # update edge touches a leaf: reduction does not apply
                order = self._order_for((a, b))
                self._extend(order, {a: x, b: y}, 2, out)
            else:
                core_order = self._core_order((a, b))
                self._extend_core(core_order, {a: x, b: y}, 2, out)
        return out

    def _core_order(self, pair: tuple[int, int]) -> list[int]:
        key = ("core",) + pair
        order = self._orders.get(key)
        if order is None:
            from repro.matching.matching_order import order_with_prefix

            order = order_with_prefix(self.query, list(pair), restrict_to=self._core)
            self._orders[key] = order
        return order

    def _extend_core(
        self,
        order: list[int],
        assign: dict[int, int],
        level: int,
        out: set[Match],
    ) -> None:
        """Backtracking over the reduced query, then leaf re-attachment."""
        q, g = self.query, self.graph
        if level == len(order):
            self._attach_leaves(assign, out)
            return
        qv = order[level]
        matched = [w for w in q.neighbors(qv) if w in assign]
        anchor = min(matched, key=lambda w: g.degree(assign[w]))
        base = g.neighbors(assign[anchor])
        self.cost.charge(len(base), "scan")
        used = set(assign.values())
        want = q.vertex_label(qv)
        for c in base:
            if g.vertex_label(c) != want or c in used:
                continue
            if not self._candidate_ok(qv, c):
                continue
            ok = True
            for w in matched:
                dv = assign[w]
                elbl = g.neighbor_dict(dv).get(c)
                self.cost.charge(1, "probe")
                if elbl is None or elbl != q.edge_label(qv, w):
                    ok = False
                    break
            if not ok:
                continue
            assign[qv] = c
            self._extend_core(order, assign, level + 1, out)
            del assign[qv]

    def _attach_leaves(self, core_assign: dict[int, int], out: set[Match]) -> None:
        """Join leaf candidates onto a core match; twin groups search
        combinations once and emit permutations (dual matching)."""
        g, q = self.graph, self.query
        group_keys = list(self._leaf_groups)

        def rec(gi: int, assign: dict[int, int]) -> None:
            if gi == len(group_keys):
                out.add(tuple(assign[u] for u in range(q.n_vertices)))
                self.cost.charge(1, "emit")
                return
            parent, vlabel, elabel = group_keys[gi]
            twins = self._leaf_groups[group_keys[gi]]
            pv = assign[parent]
            used = set(assign.values())
            cands = []
            for w, el in g.neighbor_dict(pv).items():
                self.cost.charge(1, "scan")
                if el == elabel and g.vertex_label(w) == vlabel and w not in used:
                    cands.append(w)
            k = len(twins)
            if len(cands) < k:
                return
            cands.sort()
            # search k-combinations; permutations are emitted, not searched
            def choose(start: int, picked: list[int]) -> None:
                if len(picked) == k:
                    for perm in permutations(picked):
                        for leaf, dv in zip(twins, perm):
                            assign[leaf] = dv
                        rec(gi + 1, assign)
                    for leaf in twins:
                        assign.pop(leaf, None)
                    return
                for i in range(start, len(cands)):
                    self.cost.charge(1, "join")
                    picked.append(cands[i])
                    choose(i + 1, picked)
                    picked.pop()

            choose(0, [])

        rec(0, dict(core_assign))
